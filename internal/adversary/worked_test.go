package adversary

import (
	"testing"

	"reqsched/internal/core"
	"reqsched/internal/strategies"
)

// Worked examples: single phases of the constructions, verified
// slot-by-slot against the executions the proofs describe.

// gridOf returns served[resource][round] request IDs (-1 for idle).
func gridOf(tr *core.Trace, log []core.Fulfillment) [][]int {
	grid := make([][]int, tr.N)
	h := tr.Horizon()
	for i := range grid {
		grid[i] = make([]int, h)
		for j := range grid[i] {
			grid[i][j] = -1
		}
	}
	for _, f := range log {
		grid[f.Res][f.Round] = f.Req.ID
	}
	return grid
}

func TestTheorem21WorkedExampleD2(t *testing.T) {
	// One phase at d=2, n=4 (S1..S4 = 0..3). Round 0: block(2,2) on S2,S3
	// (IDs 0..3). Round 1: R1 = {4}->(S2 first, S1), R2 = {5}->(S3, S4).
	// Round 2: block(2,2) on S2,S3 (IDs 6..9).
	b := core.NewBuilder(4, 2)
	b.Block(0, 1, 2)
	b.Add(1, 1, 0)
	b.Add(1, 2, 3)
	b.Block(2, 1, 2)
	tr := b.Build()
	res := core.Run(strategies.NewFix(), tr)
	g := gridOf(tr, res.Log)

	// The proof's execution: the first block saturates S2,S3 rounds 0-1;
	// R1 goes to S2@2 (its preferred, first-free slot), R2 to S3@2; the
	// second block only gets S2@3 and S3@3.
	if g[1][0] != 0 || g[1][1] != 1 { // block group (S2,S3): ids 0,1 on S2
		t.Fatalf("first block on S2 wrong: %v", g[1])
	}
	if g[1][2] != 4 {
		t.Fatalf("R1 should sit at S2 round 2, got %d", g[1][2])
	}
	if g[2][2] != 5 {
		t.Fatalf("R2 should sit at S3 round 2, got %d", g[2][2])
	}
	// S1 and S4 never serve anything — the proof's waste.
	for _, row := range [][]int{g[0], g[3]} {
		for t0, id := range row {
			if id != -1 {
				t.Fatalf("outer resource served %d at round %d", id, t0)
			}
		}
	}
	// Second block: exactly two served (one per resource, round 3).
	if g[1][3] == -1 || g[2][3] == -1 {
		t.Fatal("second block should get the last slots")
	}
	if res.Fulfilled != 8 { // 4 + 2 + 2 of 10
		t.Fatalf("fulfilled %d want 8", res.Fulfilled)
	}
}

func TestTheorem24WorkedExampleD2(t *testing.T) {
	// One odd phase at d=2 (see Eager): with S1,S4 busy one round, A_eager
	// burns S2,S3 on the bridge groups and can serve only 2 of R3+block's 6.
	c := Eager(2, 1)
	tr := c.Trace
	res := core.Run(strategies.NewEager(), tr)
	g := gridOf(tr, res.Log)

	// Phase start t0 = 1. IDs: block 0..3 (S1,S4), R1 = {4}, R2 = {5},
	// R3 = {6,7}, second block 8..11 (S2,S3) at round 2.
	if g[1][1] != 4 { // R1 served now at S2
		t.Fatalf("round 1 S2 serves %d, want R1 (4)", g[1][1])
	}
	if g[2][1] != 5 { // R2 served now at S3
		t.Fatalf("round 1 S3 serves %d, want R2 (5)", g[2][1])
	}
	// Round 2: R3 at S2,S3 (oldest-first), block waits.
	if g[1][2] != 6 || g[2][2] != 7 {
		t.Fatalf("round 2 should serve R3: %d, %d", g[1][2], g[2][2])
	}
	// Round 3: two block requests get the last slots; two are lost.
	if g[1][3] == -1 || g[2][3] == -1 {
		t.Fatal("round 3 should serve block requests")
	}
	if res.Fulfilled != tr.NumRequests()-2 {
		t.Fatalf("fulfilled %d want %d", res.Fulfilled, tr.NumRequests()-2)
	}
}

func TestTheorem23WorkedExampleSingleGroupD4(t *testing.T) {
	// One phase of the FixBalance construction at d=4: R1/R2 (2 each) are
	// pinned to the fresh pair's earliest slots by the balance objective,
	// so the following block loses 2d - (d+2) = 2 requests.
	c := FixBalance(4, 1)
	tr := c.Trace
	res := core.Run(strategies.NewFixBalance(), tr)
	// Counts per the proof: 2d (initial block) + d (R1,R2) + d+2 (block).
	want := 8 + 4 + 6
	if res.Fulfilled != want {
		t.Fatalf("fulfilled %d want %d", res.Fulfilled, want)
	}
	g := gridOf(tr, res.Log)
	// Phase starts at round 2 (d/2); R1 (ids 8,9) sits on the fresh pair
	// S3 (index 2) at rounds 2-3 — the balance trap.
	if g[2][2] != 8 || g[2][3] != 9 {
		t.Fatalf("R1 not pinned to fresh resource: %v", g[2][:5])
	}
}

func TestObservation32WorkedExample(t *testing.T) {
	// The simple example behind "EDF is exactly 2-competitive": d=1, two
	// requests on one pair. Independent EDF serves one and wastes the other
	// resource's round on the duplicate copy.
	b := core.NewBuilder(2, 1)
	b.Add(0, 0, 1)
	b.Add(0, 0, 1)
	tr := b.Build()
	res := core.Run(strategies.NewEDF(), tr)
	if res.Fulfilled != 1 {
		t.Fatalf("EDF should serve exactly 1, got %d", res.Fulfilled)
	}
	g := gridOf(tr, res.Log)
	if g[0][0] != 0 || g[1][0] != -1 {
		t.Fatalf("expected S1 to serve request 0 and S2 to waste its round: %v %v", g[0], g[1])
	}
}

func TestTheorem22WorkedExampleL3(t *testing.T) {
	// One phase with l=3 (d = lcm(1..3) = 6): groups R1 (first alts spread
	// over S1,S2; second S3), R2 (first alts S1; second S2), R3 = copy of
	// R2. A_current, maximizing only the current round and preferring older
	// requests, drains R1 using all three resources, then R2 on {S1, S2},
	// then R3 — and S3 idles once R1 is gone. Analytic outcome: R1 drains
	// in d/3 = 2 rounds, R2 in d/2 = 3, leaving 1 round for 2 of R3's 6:
	// served = 6 + 6 + 2 = 14 of 18.
	c := Current(3, 1)
	tr := c.Trace
	res := core.Run(strategies.NewCurrent(), tr)
	if res.Fulfilled != 14 {
		t.Fatalf("served %d want 14", res.Fulfilled)
	}
	g := gridOf(tr, res.Log)
	d := c.D
	// Rounds 0-1: all three resources serve (R1 everywhere).
	for t0 := 0; t0 < 2; t0++ {
		for i := 0; i < 3; i++ {
			if g[i][t0] == -1 {
				t.Fatalf("round %d resource %d idle during R1 drain", t0, i)
			}
		}
	}
	// R1's IDs are 0..5: rounds 0-1 serve exactly those.
	for t0 := 0; t0 < 2; t0++ {
		for i := 0; i < 3; i++ {
			if g[i][t0] >= 6 {
				t.Fatalf("round %d served younger request %d before R1 drained", t0, g[i][t0])
			}
		}
	}
	// Rounds 2..d-1: S3 (index 2) idles — the loss the proof counts.
	for t0 := 2; t0 < d; t0++ {
		if g[2][t0] != -1 {
			t.Fatalf("S3 served %d at round %d; should idle after R1", g[2][t0], t0)
		}
	}
}
