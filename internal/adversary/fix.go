package adversary

import "reqsched/internal/core"

// Fix builds the Theorem 2.1 sequence against A_fix, forcing a competitive
// ratio of 2 - 1/d with four resources (indices: S1..S4 = 0..3).
//
// Per phase (d rounds): while S2 and S3 are still busy for one round from the
// previous block, the adversary injects the groups R1 -> {S2 first, S1} and
// R2 -> {S3 first, S4} (d-1 requests each), which A_fix pins to S2 and S3
// because both are free from the next round on and A_fix prefers the first
// listed alternative. One round later a block(2,d) on {S2,S3} arrives and
// finds only one free slot per resource. A_fix serves 2d of the 4d-2 phase
// requests; the optimum serves all (R1 at S1, R2 at S4, block at S2/S3).
func Fix(d, phases int) Construction {
	if d < 2 {
		panic("adversary: Fix needs d >= 2")
	}
	const (
		s1, s2, s3, s4 = 0, 1, 2, 3
	)
	b := core.NewBuilder(4, d)
	b.Block(0, s2, s3)
	for p := 1; p <= phases; p++ {
		t0 := p*d - 1
		for i := 0; i < d-1; i++ {
			b.Add(t0, s2, s1) // R1: S2 listed first — the forced bad choice
		}
		for i := 0; i < d-1; i++ {
			b.Add(t0, s3, s4) // R2: S3 listed first
		}
		b.Block(t0+1, s2, s3)
	}
	return Construction{
		Name:       "fix",
		Theorem:    "Theorem 2.1",
		N:          4,
		D:          d,
		Bound:      2 - 1/float64(d),
		Trace:      b.Build(),
		TargetName: "A_fix",
	}
}

// Current builds the Theorem 2.2 sequence against A_current with l resources
// and d = LCM(l) (the paper uses d = l!, any d divisible by 1..l-1 works).
// The forced ratio tends to e/(e-1) as l grows.
//
// Per phase (d rounds, all requests injected in its first round): groups
// R_1..R_l of d requests each; R_i's first alternatives are spread evenly
// over S_1..S_{l-i} and its second alternative is S_{l-i+1}; R_l repeats
// R_{l-1}. A_current, maximizing only the current round and preferring older
// requests, drains the groups in order and leaves the high-indexed resources
// idle once the groups that could use them are gone; the optimum serves R_i
// (i < l) on S_{l-i+1} and R_l on S_1, losing nothing.
func Current(l, phases int) Construction {
	return currentWithD(l, LCM(l), phases, "current")
}

// CurrentFactorial is the construction exactly as printed in the paper, with
// d = l!. Identical forced ratio to Current (any d divisible by 1..l-1
// works); provided so the literal parameterization is reproducible too.
// Beware the trace size: l=7 gives d=5040.
func CurrentFactorial(l, phases int) Construction {
	d := 1
	for i := 2; i <= l; i++ {
		d *= i
	}
	return currentWithD(l, d, phases, "current_factorial")
}

func currentWithD(l, d, phases int, name string) Construction {
	if l < 2 {
		panic("adversary: Current needs l >= 2")
	}
	b := core.NewBuilder(l, d)
	for p := 0; p < phases; p++ {
		t0 := p * d
		for i := 1; i <= l; i++ {
			gi := i
			if i == l {
				gi = l - 1 // R_l is a copy of R_{l-1}
			}
			span := l - gi // first alternatives spread over S_1..S_span
			second := span // S_{span+1} zero-indexed
			for k := 0; k < d; k++ {
				first := k % span
				b.Add(t0, first, second)
			}
		}
	}
	// The asymptotic bound is e/(e-1); for finite l the forced ratio is
	// 1 / (1 - sum of the serving-rate harmonics), reported by the exact
	// bound helper below.
	return Construction{
		Name:       name,
		Theorem:    "Theorem 2.2",
		N:          l,
		D:          d,
		Bound:      CurrentBound(l),
		Trace:      b.Build(),
		TargetName: "A_current",
	}
}

// CurrentBound returns the ratio the Theorem 2.2 adversary forces for finite
// l: A_current spends d/(l-i+1) rounds draining group i, so it completes the
// first k groups where the cumulative time reaches d, serves the fraction of
// the next group that fits, and loses the rest. The ratio tends to
// e/(e-1) ≈ 1.582 as l -> infinity.
func CurrentBound(l int) float64 {
	// Serving rates: group i (1-based, i < l) uses l-i+1 resources; group l
	// uses the leftover time. Time to drain group i completely: 1/(l-i+1)
	// of the phase (d rounds each group, rate l-i+1 per round).
	served := 0.0
	time := 0.0
	for i := 1; i <= l; i++ {
		rate := float64(l - i + 1)
		if i == l {
			rate = 2 // R_l repeats R_{l-1}: resources S_1, S_2
		}
		need := 1.0 / rate // phase fraction to drain the group
		if time+need <= 1.0 {
			served += 1.0
			time += need
		} else {
			served += (1.0 - time) * rate
			break
		}
	}
	return float64(l) / served
}
