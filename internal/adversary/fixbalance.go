package adversary

import "reqsched/internal/core"

// FixBalance builds the Theorem 2.3 sequence against A_fix_balance (even d,
// six resources), forcing a ratio of 3d/(2d+2).
//
// Phases rotate through the three resource pairs (S1,S2), (S3,S4), (S5,S6).
// At each phase start the active pair is blocked for d/2 more rounds; the
// groups R1 -> {blocked_a, fresh_a} and R2 -> {blocked_b, fresh_b} (d/2 each)
// arrive and the balance objective pins them onto the *fresh* pair (earliest
// free slots). One round later a block(2,d) on the fresh pair finds only
// d/2+1 free slots per resource, so A_fix_balance serves 2d+2 of the 3d
// phase requests while the optimum serves all (R1/R2 late on the blocked
// pair, block fully on the fresh pair).
func FixBalance(d, phases int) Construction {
	if d < 2 || d%2 != 0 {
		panic("adversary: FixBalance needs even d >= 2")
	}
	pairs := [3][2]int{{0, 1}, {2, 3}, {4, 5}}
	b := core.NewBuilder(6, d)
	b.Block(0, 0, 1)
	for p := 0; p < phases; p++ {
		t0 := d/2 + p*(d/2+1)
		blocked := pairs[p%3]
		fresh := pairs[(p+1)%3]
		for i := 0; i < d/2; i++ {
			b.Add(t0, blocked[0], fresh[0]) // R1
		}
		for i := 0; i < d/2; i++ {
			b.Add(t0, blocked[1], fresh[1]) // R2
		}
		b.Block(t0+1, fresh[0], fresh[1])
	}
	return Construction{
		Name:       "fix_balance",
		Theorem:    "Theorem 2.3",
		N:          6,
		D:          d,
		Bound:      3 * float64(d) / (2*float64(d) + 2),
		Trace:      b.Build(),
		TargetName: "A_fix_balance",
	}
}

// Eager builds the Theorem 2.4 sequence (even d, four resources), forcing a
// ratio of 4/3 on A_eager — and, for d = 2, on A_current, A_fix_balance and
// A_balance as well.
//
// Phases of length 3d/2 overlap with spacing d. In an odd phase the pair
// (S1,S4) is busy for the first d/2 rounds; the adversary injects R1 (d/2 ->
// S1,S2), R2 (d/2 -> S3,S4) and R3 (d -> S2,S3); maximizing current-round
// service makes the algorithm burn S2/S3 on R1/R2 first, so when the
// block(2,d) on (S2,S3) arrives d/2 rounds later, R3 and the block (3d
// requests) compete for 2d remaining slots. Even phases mirror the roles of
// (S1,S4) and (S2,S3).
func Eager(d, phases int) Construction {
	if d < 2 || d%2 != 0 {
		panic("adversary: Eager needs even d >= 2")
	}
	const (
		s1, s2, s3, s4 = 0, 1, 2, 3
	)
	b := core.NewBuilder(4, d)
	b.Block(0, s1, s4)
	for p := 1; p <= phases; p++ {
		t0 := d/2 + (p-1)*d
		odd := p%2 == 1
		inner, outer := [2]int{s2, s3}, [2]int{s1, s4}
		if !odd {
			inner, outer = outer, inner
		}
		// R1 and R2 bridge the busy pair and the free pair.
		for i := 0; i < d/2; i++ {
			b.Add(t0, outer[0], inner[0]) // R1: (S1,S2) in odd phases
		}
		for i := 0; i < d/2; i++ {
			b.Add(t0, inner[1], outer[1]) // R2: (S3,S4) in odd phases
		}
		for i := 0; i < d; i++ {
			b.Add(t0, inner[0], inner[1]) // R3 on the free pair
		}
		b.Block(t0+d/2, inner[0], inner[1])
	}
	return Construction{
		Name:       "eager",
		Theorem:    "Theorem 2.4",
		N:          4,
		D:          d,
		Bound:      4.0 / 3.0,
		Trace:      b.Build(),
		TargetName: "A_eager",
	}
}
