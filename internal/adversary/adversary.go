// Package adversary implements the request sequences from the paper's
// lower-bound proofs (Section 2 and Theorem 3.7). Each construction returns a
// Construction bundling the trace (or adaptive source), the theorem's bound,
// and the strategy it targets. The lower bounds are existential — "the
// strategy can be implemented in a way that ..." — and the constructions here
// order request IDs and alternative listings so that the deterministic
// implementations in internal/strategies realize exactly the executions the
// proofs describe. Tests and the Table 1 harness measure OPT/ALG on these
// traces and check convergence to the proven bound as the number of phases
// grows.
package adversary

import (
	"fmt"

	"reqsched/internal/core"
)

// Construction is one adversarial lower-bound instance.
type Construction struct {
	// Name identifies the construction; Theorem cites the paper.
	Name    string
	Theorem string
	// N and D are the model parameters the construction was built for.
	N, D int
	// Bound is the theorem's asymptotic lower bound on the competitive
	// ratio of the target strategy on this input family.
	Bound float64
	// Trace is the request sequence (nil when the adversary is adaptive).
	Trace *core.Trace
	// Source is the adaptive adversary (only Theorem 2.6).
	Source core.AdaptiveSource
	// TargetName names the strategy the construction is designed to fool.
	TargetName string
}

func (c Construction) String() string {
	return fmt.Sprintf("%s (%s, d=%d, n=%d, bound %.4f)", c.Name, c.Theorem, c.D, c.N, c.Bound)
}

// gcd and lcm over ints.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of 1..k — the smallest deadline d for
// which the Theorem 2.2 construction's group sizes d/(l-i) are all integral.
func LCM(k int) int {
	l := 1
	for i := 2; i <= k; i++ {
		l = l / gcd(l, i) * i
	}
	return l
}
