package adversary

// Universal builds the Theorem 2.6 adaptive adversary, which forces a
// competitive ratio of at least 45/41 on *every* deterministic online
// algorithm using ten resources and 3 | d.
//
// The ten resources form five pairs. Each cycle of d rounds starts with three
// pairs blocked by a block(6,d). At round 2d/3 into the cycle the adversary
// injects 4d "colored" requests in three groups of 4d/3: first alternatives
// spread evenly over the four free resources, second alternatives over one
// blocked pair per color. In the cycle's last d/3 rounds only the free pairs
// can serve colored requests (at most 4d/3 of them). At the next cycle start
// the adversary observes which color has the most unfulfilled requests — at
// least ceil(8d/9) by averaging — and injects the next block(6,d) over the
// two free pairs plus that color's pair, killing those requests; the other
// two colors get served by their own pairs. The optimum serves everything
// (the doomed color entirely in the first d/3 window). Per cycle: 10d
// requests injected, at least ~8d/9 lost by the online algorithm.
func Universal(d, cycles int) Construction {
	if d < 3 || d%3 != 0 {
		panic("adversary: Universal needs d divisible by 3")
	}
	return Construction{
		Name:    "universal",
		Theorem: "Theorem 2.6",
		N:       10,
		D:       d,
		Bound:   45.0 / 41.0,
		Source: &universalSource{
			d:       d,
			p:       d / 3,
			cycles:  cycles,
			blocked: [3]int{0, 1, 2},
			free:    [2]int{3, 4},
		},
		TargetName: "",
	}
}

// UniversalAnyD generalizes Universal to deadlines not divisible by three,
// per the paper's closing remark on Theorem 2.6: Phase 1 is shortened to
// floor(d/3) rounds and the colored groups shrink accordingly, which costs
// only a constant per phase; the remark guarantees at least 12/11 for every
// d (45/41 asymptotically). Requires d >= 4 so the floor is positive.
func UniversalAnyD(d, cycles int) Construction {
	if d < 4 {
		panic("adversary: UniversalAnyD needs d >= 4")
	}
	bound := 12.0 / 11.0
	if d%3 == 0 {
		bound = 45.0 / 41.0
	}
	return Construction{
		Name:    "universal_anyd",
		Theorem: "Theorem 2.6 (remark)",
		N:       10,
		D:       d,
		Bound:   bound,
		Source: &universalSource{
			d:       d,
			p:       d / 3,
			cycles:  cycles,
			blocked: [3]int{0, 1, 2},
			free:    [2]int{3, 4},
		},
	}
}

// universalSource is the adaptive request generator behind Universal.
type universalSource struct {
	d      int
	p      int // Phase 1 length: d/3 rounded down for the any-d variant
	cycles int

	blocked [3]int // pair indices currently blocked (the color pairs)
	free    [2]int // pair indices currently free

	colored [3][]int // request IDs of each color group in the current cycle
	nextID  int
}

// pairRes returns the two resource indices of pair p.
func pairRes(p int) [2]int { return [2]int{2 * p, 2*p + 1} }

// N implements core.AdaptiveSource.
func (u *universalSource) N() int { return 10 }

// D implements core.AdaptiveSource.
func (u *universalSource) D() int { return u.d }

// Done implements core.AdaptiveSource.
func (u *universalSource) Done(t int) bool { return t > u.cycles*u.d }

// Next implements core.AdaptiveSource.
func (u *universalSource) Next(t int, isServed func(id int) bool) [][]int {
	d := u.d
	cycle, off := t/d, t%d
	var specs [][]int
	switch {
	case t == 0:
		specs = u.blockSpecs(u.blocked[0], u.blocked[1], u.blocked[2])
	case off == 0 && cycle >= 1 && cycle <= u.cycles:
		// Cycle boundary: pick the color with the most unfulfilled
		// requests, then re-block its pair together with the free pairs.
		worst, worstCount := 0, -1
		for c := 0; c < 3; c++ {
			unserved := 0
			for _, id := range u.colored[c] {
				if !isServed(id) {
					unserved++
				}
			}
			if unserved > worstCount {
				worst, worstCount = c, unserved
			}
		}
		doomedPair := u.blocked[worst]
		survivors := make([]int, 0, 2)
		for c := 0; c < 3; c++ {
			if c != worst {
				survivors = append(survivors, u.blocked[c])
			}
		}
		newBlocked := [3]int{u.free[0], u.free[1], doomedPair}
		u.blocked = newBlocked
		u.free = [2]int{survivors[0], survivors[1]}
		u.colored = [3][]int{}
		specs = u.blockSpecs(newBlocked[0], newBlocked[1], newBlocked[2])
	case off == d-u.p && cycle < u.cycles:
		// Phase 1: colored requests, 4p per color with first alternatives
		// spread evenly over the four free resources (p each).
		freeRes := []int{
			pairRes(u.free[0])[0], pairRes(u.free[0])[1],
			pairRes(u.free[1])[0], pairRes(u.free[1])[1],
		}
		for c := 0; c < 3; c++ {
			own := pairRes(u.blocked[c])
			for k := 0; k < 4*u.p; k++ {
				specs = append(specs, []int{freeRes[k%4], own[k%2]})
				u.colored[c] = append(u.colored[c], u.nextID+len(specs)-1)
			}
		}
	}
	u.nextID += len(specs)
	return specs
}

// blockSpecs returns the alternative lists of a block(6,d) over the six
// resources of the three given pairs, in the paper's cyclic structure.
func (u *universalSource) blockSpecs(p0, p1, p2 int) [][]int {
	res := []int{
		pairRes(p0)[0], pairRes(p0)[1],
		pairRes(p1)[0], pairRes(p1)[1],
		pairRes(p2)[0], pairRes(p2)[1],
	}
	var specs [][]int
	for i := 0; i < 6; i++ {
		for k := 0; k < u.d; k++ {
			specs = append(specs, []int{res[i], res[(i+1)%6]})
		}
	}
	return specs
}
