package adversary

import (
	"testing"

	"reqsched/internal/core"
	"reqsched/internal/offline"
	"reqsched/internal/strategies"
	"reqsched/internal/workload"
)

// The tie-breaking ablation of DESIGN.md: each lower-bound construction
// steers the deterministic strategy through a specific channel — the listing
// order of alternatives or the injection order within a round. Randomizing
// that channel must destroy most of the forced loss, while randomizing the
// *other* channel leaves it intact. This pins down, per construction, what
// the adversary actually exploits.

func measuredRatio(t *testing.T, tr *core.Trace, s core.Strategy) float64 {
	t.Helper()
	res := core.Run(s, tr)
	if err := core.ValidateLog(tr, res.Log); err != nil {
		t.Fatal(err)
	}
	return float64(offline.Optimum(tr)) / float64(res.Fulfilled)
}

func TestFixAdversaryExploitsAlternativeListing(t *testing.T) {
	c := Fix(4, 60)
	orig := measuredRatio(t, c.Trace, strategies.NewFix())
	shuffledAlts := measuredRatio(t, workload.ShuffleAlts(c.Trace, 1), strategies.NewFix())
	shuffledOrder := measuredRatio(t, workload.ShuffleArrivalOrder(c.Trace, 1), strategies.NewFix())

	if orig < 1.70 {
		t.Fatalf("original ratio %f lost its force", orig)
	}
	// The construction works through the listing order: shuffling it must
	// recover a large part of the loss ...
	if shuffledAlts > orig-0.2 {
		t.Fatalf("alt shuffle barely helped: %f vs %f", shuffledAlts, orig)
	}
	// ... while the injection order within a round is irrelevant here
	// (all requests of a group are identical).
	if shuffledOrder < orig-1e-9 {
		t.Fatalf("order shuffle changed a symmetric construction: %f vs %f", shuffledOrder, orig)
	}
}

func TestEagerAdversaryExploitsArrivalOrder(t *testing.T) {
	c := Eager(4, 60)
	orig := measuredRatio(t, c.Trace, strategies.NewEager())
	shuffledAlts := measuredRatio(t, workload.ShuffleAlts(c.Trace, 1), strategies.NewEager())
	shuffledOrder := measuredRatio(t, workload.ShuffleArrivalOrder(c.Trace, 1), strategies.NewEager())

	if orig < 1.31 {
		t.Fatalf("original ratio %f lost its force", orig)
	}
	// A_eager's member choice is slot-driven and serves oldest-first, so
	// the listing order does not matter ...
	if shuffledAlts < orig-1e-9 || shuffledAlts > orig+1e-9 {
		t.Fatalf("alt shuffle changed a slot-driven construction: %f vs %f", shuffledAlts, orig)
	}
	// ... but mixing R3 among R1/R2 in the injection order breaks the
	// "serve the bridges first" trap.
	if shuffledOrder > orig-0.1 {
		t.Fatalf("order shuffle barely helped: %f vs %f", shuffledOrder, orig)
	}
}

func TestCurrentAdversaryExploitsArrivalOrder(t *testing.T) {
	c := Current(5, 6)
	orig := measuredRatio(t, c.Trace, strategies.NewCurrent())
	shuffledOrder := measuredRatio(t, workload.ShuffleArrivalOrder(c.Trace, 1), strategies.NewCurrent())
	if orig < 1.45 {
		t.Fatalf("original ratio %f lost its force", orig)
	}
	// Group-by-group draining requires the groups to arrive in ID blocks.
	if shuffledOrder > 1.15 {
		t.Fatalf("order shuffle barely helped: %f vs %f", shuffledOrder, orig)
	}
}

func TestShuffledAdversariesStillWithinUpperBounds(t *testing.T) {
	// Whatever the ablation does, the proven upper bounds are
	// worst-case-over-all-inputs and must keep holding.
	cases := []struct {
		tr *core.Trace
		s  core.Strategy
		ub float64
	}{
		{workload.ShuffleAlts(Fix(4, 30).Trace, 2), strategies.NewFix(), 2 - 1.0/4},
		{workload.ShuffleArrivalOrder(Eager(4, 30).Trace, 2), strategies.NewEager(), (3.0*4 - 2) / (2.0*4 - 1)},
		{workload.ShuffleAlts(FixBalance(8, 30).Trace, 2), strategies.NewFixBalance(), 2 - 2.0/8},
	}
	for i, tc := range cases {
		r := measuredRatio(t, tc.tr, tc.s)
		if r > tc.ub+1e-9 {
			t.Fatalf("case %d: shuffled ratio %f exceeds UB %f", i, r, tc.ub)
		}
	}
}

func TestRandomizedBaselineEscapesUniversalSlightly(t *testing.T) {
	// Theorem 2.6 holds for deterministic algorithms. The adaptive
	// adversary still observes a randomized strategy's outcomes here (it is
	// adaptive, not oblivious), so the bound still binds in our runner —
	// this test documents that the adaptive formulation subsumes randomness.
	c := Universal(6, 15)
	res, tr := core.RunAdaptive(strategies.NewRandomFit(123), c.Source)
	opt := offline.Optimum(tr)
	r := float64(opt) / float64(res.Fulfilled)
	if r < 45.0/41.0 {
		t.Fatalf("adaptive adversary failed against randomized baseline: %f", r)
	}
}
