package adversary

import "reqsched/internal/core"

// LocalFix builds the Theorem 3.7 sequence against A_local_fix, forcing a
// competitive ratio of exactly 2 with four resources.
//
// Per interval of d rounds (requests only in its first round): R1 (d -> S1
// first, S2), R2 (d -> S3 first, S4) and R3 (2d -> S1 first, S3). In the
// first communication round every request goes to its first alternative; S1
// receives R1 and R3 but admits at most d messages (latest deadline first,
// ties by lower ID — R1 was injected first) and accepts R1, filling itself.
// In the second communication round the failed R3 goes to S3, which R2
// already filled. A_local_fix serves 2d of 4d; the optimum serves R1 on S2,
// R2 on S4 and splits R3 over S1 and S3.
func LocalFix(d, intervals int) Construction {
	if d < 1 {
		panic("adversary: LocalFix needs d >= 1")
	}
	const (
		s1, s2, s3, s4 = 0, 1, 2, 3
	)
	b := core.NewBuilder(4, d)
	for p := 0; p < intervals; p++ {
		t0 := p * d
		b.AddGroup(t0, d, s1, s2)   // R1
		b.AddGroup(t0, d, s3, s4)   // R2
		b.AddGroup(t0, 2*d, s1, s3) // R3
	}
	return Construction{
		Name:       "local_fix",
		Theorem:    "Theorem 3.7",
		N:          4,
		D:          d,
		Bound:      2,
		Trace:      b.Build(),
		TargetName: "A_local_fix",
	}
}

// EDFWorstCase builds the family of inputs on which the independent-copies
// EDF of Observation 3.2 is exactly 2-competitive: per interval of d rounds,
// 2d identical requests naming the pair (S1,S2). Both resources hold the
// same queue, so every round the second resource wastes its slot on the copy
// of the request the first resource just served; EDF fulfills d of 2d per
// interval while the optimum fulfills all.
func EDFWorstCase(d, intervals int) Construction {
	b := core.NewBuilder(2, d)
	for p := 0; p < intervals; p++ {
		b.AddGroup(p*d, 2*d, 0, 1)
	}
	return Construction{
		Name:       "edf_worst",
		Theorem:    "Observation 3.2",
		N:          2,
		D:          d,
		Bound:      2,
		Trace:      b.Build(),
		TargetName: "EDF",
	}
}
