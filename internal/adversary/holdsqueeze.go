package adversary

import "reqsched/internal/core"

// HoldSqueeze builds the reusable-resources lower-bound input: under the
// service model hold=k (cap=1), greedy slot-scanning strategies are forced to
// exactly half the optimum — matching the classical factor-2 guarantee for
// greedy/maximal matching, which is the conservative baseline the Baek–Wang
// analysis (arXiv 2304.03377) improves on in the windowless model.
//
// Two resources x and y; one gadget per epoch of k rounds, t0 = e*k:
//
//   - r1 arrives at t0 naming {x first, y}, deadline window 1 (serve now or
//     never). Greedy takes the first listed free alternative: x, occupying it
//     for rounds [t0, t0+k).
//   - r2 arrives at t0+1 naming {x} only, window k-1, so its last admissible
//     start is t0+k-1 — still inside x's hold. Greedy retries every round,
//     finds x busy throughout, and expires the request.
//
// The optimum serves r1 on y at t0 and r2 on x at t0+1; both services end
// before the next gadget needs the resources again (x frees at t0+k+1, and
// the next r2' does not start before t0+k+1), so every gadget serves 2 for
// the optimum versus 1 for greedy — OPT/ALG is exactly 2 with no additive
// slack for any number of phases.
func HoldSqueeze(hold, phases int) Construction {
	if hold < 2 {
		panic("adversary: HoldSqueeze needs hold >= 2")
	}
	const x, y = 0, 1
	d := hold - 1
	b := core.NewBuilder(2, d)
	b.SetModel(core.ServiceModel{Hold: hold, Cap: 1})
	for e := 0; e < phases; e++ {
		t0 := e * hold
		b.AddWindow(t0, 1, x, y)
		b.AddWindow(t0+1, d, x)
	}
	return Construction{
		Name:       "hold_squeeze",
		Theorem:    "greedy/maximal-matching factor 2 (cf. arXiv 2304.03377)",
		N:          2,
		D:          d,
		Bound:      2,
		Trace:      b.Build(),
		TargetName: "compose,router=greedy",
	}
}
