package ballsbins

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGreedyConservesBalls(t *testing.T) {
	f := func(seed int64) bool {
		loads := Greedy(500, 50, 2, seed)
		return TotalLoad(loads) == 500
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyDeterministicPerSeed(t *testing.T) {
	a := Greedy(1000, 100, 2, 7)
	b := Greedy(1000, 100, 2, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed differs")
		}
	}
}

func TestGreedySingleBin(t *testing.T) {
	loads := Greedy(10, 1, 1, 1)
	if loads[0] != 10 {
		t.Fatalf("single bin load %d", loads[0])
	}
}

func TestGreedyAllChoices(t *testing.T) {
	// c = n: every ball sees every bin, so the allocation is perfectly
	// balanced (max - min <= 1).
	loads := Greedy(100, 10, 10, 3)
	if MaxLoad(loads) != 10 {
		t.Fatalf("c=n should balance perfectly, max %d", MaxLoad(loads))
	}
}

func TestPowerOfTwoChoices(t *testing.T) {
	// The [ABKU94] phenomenon, measured: with m = n balls the two-choice
	// maximum load is dramatically below the one-choice maximum load, and
	// close to the log log n / log 2 prediction. Averaged over seeds to be
	// robust.
	const n = 10000
	seeds := []int64{1, 2, 3, 4, 5}
	avg := func(c int) float64 {
		sum := 0
		for _, s := range seeds {
			sum += MaxLoad(Greedy(n, n, c, s))
		}
		return float64(sum) / float64(len(seeds))
	}
	one := avg(1)
	two := avg(2)
	three := avg(3)
	// Theory: one-choice ~ ln n / ln ln n ≈ 4.2 ... observed ~7-9 for this
	// n with the constant; two-choice ~ ln ln n / ln 2 + O(1) ≈ 3.2 + O(1).
	if two >= one {
		t.Fatalf("two choices (%f) not better than one (%f)", two, one)
	}
	if three > two {
		t.Fatalf("three choices (%f) worse than two (%f)", three, two)
	}
	predicted := math.Log(math.Log(float64(n))) / math.Log(2)
	if two > predicted+3 {
		t.Fatalf("two-choice max load %f far above prediction %f + O(1)", two, predicted)
	}
	if one < predicted+1 {
		t.Fatalf("one-choice max load %f suspiciously low", one)
	}
}

func TestGreedyPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { Greedy(1, 0, 1, 1) },
		func() { Greedy(1, 2, 3, 1) },
		func() { Greedy(1, 2, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSampleDistinct(t *testing.T) {
	f := func(seed int64) bool {
		loads := Greedy(1, 20, 5, seed) // exercises sample(5 of 20)
		return TotalLoad(loads) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	// Directly: repeated sampling yields distinct indices in range.
	c := make([]int, 7)
	rngSeeds := []int64{1, 2, 3}
	for _, s := range rngSeeds {
		loads := Greedy(200, 7, 7, s)
		if TotalLoad(loads) != 200 {
			t.Fatal("sample broke conservation")
		}
	}
	_ = c
}

func TestCollisionPlacesEverything(t *testing.T) {
	res := Collision(1000, 1000, 2, 4, 40, 9)
	if res.Unplaced != 0 {
		t.Fatalf("%d balls unplaced after %d rounds", res.Unplaced, res.Rounds)
	}
	if TotalLoad(res.Loads) != 1000 {
		t.Fatalf("conservation broken: %d", TotalLoad(res.Loads))
	}
	if MaxLoad(res.Loads) > 4 {
		t.Fatalf("threshold violated: %d", MaxLoad(res.Loads))
	}
}

func TestCollisionRoundsGrowSlowly(t *testing.T) {
	// O(log log n)-ish rounds: even at n = 100k the protocol should finish
	// in well under 20 rounds with threshold 4.
	res := Collision(100000, 100000, 2, 4, 60, 11)
	if res.Unplaced != 0 {
		t.Fatalf("unplaced %d", res.Unplaced)
	}
	if res.Rounds > 20 {
		t.Fatalf("took %d rounds", res.Rounds)
	}
}

func TestCollisionRespectsBudget(t *testing.T) {
	// Impossible configuration: more balls than threshold capacity; the
	// protocol must stop at the budget and report the leftovers.
	res := Collision(100, 10, 2, 4, 5, 13)
	if res.Rounds > 5 {
		t.Fatalf("rounds %d exceed budget", res.Rounds)
	}
	if res.Unplaced != 100-TotalLoad(res.Loads) {
		t.Fatal("unplaced accounting broken")
	}
	if res.Unplaced == 0 {
		t.Fatal("100 balls cannot fit under threshold 4 x 10 bins = 40")
	}
	if MaxLoad(res.Loads) > 4 {
		t.Fatalf("threshold violated: %d", MaxLoad(res.Loads))
	}
}

func TestCollisionDeterministic(t *testing.T) {
	a := Collision(500, 500, 2, 3, 30, 21)
	b := Collision(500, 500, 2, 3, 30, 21)
	if a.Rounds != b.Rounds || a.Unplaced != b.Unplaced {
		t.Fatal("not deterministic")
	}
}

func BenchmarkGreedy(b *testing.B) {
	for _, c := range []int{1, 2, 3} {
		c := c
		b.Run(map[int]string{1: "c=1", 2: "c=2", 3: "c=3"}[c], func(b *testing.B) {
			var max int
			for i := 0; i < b.N; i++ {
				max = MaxLoad(Greedy(100000, 100000, c, int64(i)))
			}
			b.ReportMetric(float64(max), "maxload")
		})
	}
}

func BenchmarkCollision(b *testing.B) {
	var rounds int
	for i := 0; i < b.N; i++ {
		res := Collision(100000, 100000, 2, 4, 40, int64(i))
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}
