// Package ballsbins implements the allocation processes the paper builds on
// (Section 1.1): sequential multi-choice balls-into-bins à la Azar, Broder,
// Karlin and Upfal [ABKU94] — each ball inspects c random bins and joins the
// least loaded, dropping the maximum load from Θ(log n / log log n) to
// Θ(log log n / log c) — and a synchronous collision protocol in the style
// of the parallel games ([ACMR95], [Ste96]) that the local scheduling
// strategies inherit their communication-round model from.
//
// The scheduling connection: a request naming two alternative disks is a
// ball with two choices; the load-balancing gain the strategies exploit is
// exactly the two-choice gap this package measures.
package ballsbins

import "math/rand"

// Greedy allocates m balls into n bins sequentially; each ball draws c
// distinct bins uniformly and joins the least loaded (ties to the
// lowest-indexed drawn bin). Returns the bin loads. Deterministic per seed.
func Greedy(m, n, c int, seed int64) []int {
	if n < 1 || c < 1 || c > n {
		panic("ballsbins: need 1 <= c <= n")
	}
	rng := rand.New(rand.NewSource(seed))
	loads := make([]int, n)
	choice := make([]int, c)
	for ball := 0; ball < m; ball++ {
		sample(rng, n, choice)
		best := choice[0]
		for _, b := range choice[1:] {
			if loads[b] < loads[best] {
				best = b
			}
		}
		loads[best]++
	}
	return loads
}

// sample fills choice with len(choice) distinct values from [0, n), in draw
// order (partial Fisher–Yates over a virtual array, tracked sparsely).
func sample(rng *rand.Rand, n int, choice []int) {
	if len(choice) == 1 {
		choice[0] = rng.Intn(n)
		return
	}
	seen := make(map[int]int, len(choice))
	for i := range choice {
		j := i + rng.Intn(n-i)
		vi, ok := seen[i]
		if !ok {
			vi = i
		}
		vj, ok := seen[j]
		if !ok {
			vj = j
		}
		choice[i] = vj
		seen[i], seen[j] = vj, vi
	}
}

// MaxLoad returns the largest bin load.
func MaxLoad(loads []int) int {
	max := 0
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// TotalLoad returns the number of balls placed.
func TotalLoad(loads []int) int {
	total := 0
	for _, l := range loads {
		total += l
	}
	return total
}

// CollisionResult reports one run of the parallel collision protocol.
type CollisionResult struct {
	// Loads is the final allocation.
	Loads []int
	// Rounds is the number of communication rounds used.
	Rounds int
	// Unplaced counts balls still unallocated when the round budget ran
	// out (0 on success).
	Unplaced int
}

// Collision runs the synchronous c-choice collision protocol: every
// unplaced ball announces itself to its c chosen bins; a bin accepts all its
// announcements if that keeps its load at most the threshold, otherwise it
// rejects them all; rejected balls redraw fresh bins and retry next round,
// up to maxRounds. With threshold O(1) and c = 2 the protocol places all
// balls in O(log log n) rounds with high probability — the communication-
// round economics behind Section 3.2's local strategies.
func Collision(m, n, c, threshold, maxRounds int, seed int64) CollisionResult {
	if threshold < 1 {
		panic("ballsbins: threshold must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	loads := make([]int, n)
	unplaced := m
	res := CollisionResult{Loads: loads}
	choice := make([]int, c)
	for res.Rounds = 0; res.Rounds < maxRounds && unplaced > 0; res.Rounds++ {
		// Each unplaced ball announces to c freshly drawn bins.
		announcements := make([][]int, n) // bin -> announcing ball ids
		for ball := 0; ball < unplaced; ball++ {
			sample(rng, n, choice)
			for _, b := range choice {
				announcements[b] = append(announcements[b], ball)
			}
		}
		accepted := make([]bool, unplaced)
		for b := 0; b < n; b++ {
			if len(announcements[b]) == 0 {
				continue
			}
			if loads[b]+len(announcements[b]) > threshold {
				continue // collision: reject all
			}
			for _, ball := range announcements[b] {
				if !accepted[ball] {
					accepted[ball] = true
					loads[b]++
				}
			}
		}
		still := 0
		for ball := 0; ball < unplaced; ball++ {
			if !accepted[ball] {
				still++
			}
		}
		unplaced = still
	}
	res.Unplaced = unplaced
	return res
}
