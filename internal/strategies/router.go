package strategies

import "reqsched/internal/core"

// The paper strategies' resource-assignment bodies exposed as composable
// policy routers (they satisfy policy.Router structurally; this package does
// not import internal/policy). Each router shares its round body with the
// fused strategy — routeFix, routeCurrent, routeFixBalance, routeReschedule
// — so compose(router=X, order=fcfs, admit=always, prio=constant) is
// byte-identical to the fused form, a property the equivalence tests and
// cmd/verify pin. Like strategy instances, routers carry per-instance
// scratch and are not safe for concurrent use.

// FixRouter is the A_fix round body as a router: keep all previous
// assignments, match this round's arrivals maximally into the free slots.
type FixRouter struct{ sc roundScratch }

// NewFixRouter returns the fix router.
func NewFixRouter() *FixRouter { return &FixRouter{} }

// Name implements policy.Router.
func (*FixRouter) Name() string { return "fix" }

// Begin implements policy.Router.
func (*FixRouter) Begin(n, d int) {}

// Route implements policy.Router.
func (r *FixRouter) Route(ctx *core.RoundContext, queue []*core.Request) {
	routeFix(ctx, queue, &r.sc)
}

// CurrentRouter is the A_current round body as a router: maximum matching
// into the current round's slots only, no forward planning.
type CurrentRouter struct{ sc roundScratch }

// NewCurrentRouter returns the current router.
func NewCurrentRouter() *CurrentRouter { return &CurrentRouter{} }

// Name implements policy.Router.
func (*CurrentRouter) Name() string { return "current" }

// Begin implements policy.Router.
func (*CurrentRouter) Begin(n, d int) {}

// Route implements policy.Router.
func (r *CurrentRouter) Route(ctx *core.RoundContext, queue []*core.Request) {
	routeCurrent(ctx, queue, &r.sc)
}

// FixBalanceRouter is the A_fix_balance round body as a router: no
// rescheduling, F-maximal extension over the free slots.
type FixBalanceRouter struct{ sc roundScratch }

// NewFixBalanceRouter returns the fix_balance router.
func NewFixBalanceRouter() *FixBalanceRouter { return &FixBalanceRouter{} }

// Name implements policy.Router.
func (*FixBalanceRouter) Name() string { return "fix_balance" }

// Begin implements policy.Router.
func (*FixBalanceRouter) Begin(n, d int) {}

// Route implements policy.Router.
func (r *FixBalanceRouter) Route(ctx *core.RoundContext, queue []*core.Request) {
	routeFixBalance(ctx, queue, &r.sc)
}

// EagerRouter is the A_eager round body as a router: recompute a maximum
// matching maximizing current-round service, keeping scheduled requests
// scheduled.
type EagerRouter struct{ sc roundScratch }

// NewEagerRouter returns the eager router.
func NewEagerRouter() *EagerRouter { return &EagerRouter{} }

// Name implements policy.Router.
func (*EagerRouter) Name() string { return "eager" }

// Begin implements policy.Router.
func (*EagerRouter) Begin(n, d int) {}

// Route implements policy.Router.
func (r *EagerRouter) Route(ctx *core.RoundContext, queue []*core.Request) {
	routeReschedule(ctx, queue, 2, &r.sc)
}

// BalanceRouter is the A_balance round body as a router: recompute the
// F-maximal maximum matching, keeping scheduled requests scheduled.
type BalanceRouter struct{ sc roundScratch }

// NewBalanceRouter returns the balance router.
func NewBalanceRouter() *BalanceRouter { return &BalanceRouter{} }

// Name implements policy.Router.
func (*BalanceRouter) Name() string { return "balance" }

// Begin implements policy.Router.
func (*BalanceRouter) Begin(n, d int) {}

// Route implements policy.Router.
func (r *BalanceRouter) Route(ctx *core.RoundContext, queue []*core.Request) {
	routeReschedule(ctx, queue, 0, &r.sc)
}
