package strategies

import (
	"sort"

	"reqsched/internal/core"
)

// EDF implements the Earliest Deadline First reference strategy of
// Observations 3.1 and 3.2: every resource works independently, serving each
// round the queued request copy with the earliest deadline (ties by ID). A
// request with c alternatives enqueues a copy at each of them.
//
// In the *independent* variant (the analysis model of Observation 3.2) a
// resource does not learn that a sibling copy was already served: it still
// spends its round on the stale copy, wasting the slot. This makes EDF
// exactly c-competitive for c alternatives (2 for the paper's model). The
// *coordinated* variant (NewEDFCoordinated) skips served copies — a natural
// implementation improvement the paper's analysis does not need, kept here as
// an ablation.
type EDF struct {
	coordinated bool
	queues      [][]*core.Request
	served      map[int]bool
}

// NewEDF returns the independent-copies EDF strategy.
func NewEDF() *EDF { return &EDF{} }

// NewEDFCoordinated returns the EDF variant that cancels sibling copies when
// a request is served.
func NewEDFCoordinated() *EDF { return &EDF{coordinated: true} }

// Name implements core.Strategy.
func (e *EDF) Name() string {
	if e.coordinated {
		return "EDF_coordinated"
	}
	return "EDF"
}

// Begin implements core.Strategy.
func (e *EDF) Begin(n, d int) {
	e.queues = make([][]*core.Request, n)
	e.served = make(map[int]bool)
}

// Round implements core.Strategy.
func (e *EDF) Round(ctx *core.RoundContext) {
	for _, r := range ctx.Arrivals {
		for _, a := range r.Alts {
			e.queues[a] = append(e.queues[a], r)
		}
	}
	for i := range e.queues {
		// A resource still holding an earlier service (hold > 1) skips the
		// round; under the unit model the current slot is always free here.
		if !ctx.W.Free(i, ctx.T) {
			continue
		}
		// Keep each queue in EDF order (deadline, then ID). Sorting the
		// whole queue each round is O(q log q); queues are short in all the
		// workloads of interest and clarity wins.
		q := e.queues[i]
		sort.SliceStable(q, func(a, b int) bool {
			if q[a].Deadline() != q[b].Deadline() {
				return q[a].Deadline() < q[b].Deadline()
			}
			return q[a].ID < q[b].ID
		})
		for len(q) > 0 {
			r := q[0]
			if r.Deadline() < ctx.T {
				q = q[1:] // expired copy
				continue
			}
			if e.served[r.ID] {
				if e.coordinated {
					q = q[1:] // cancelled copy: try the next one
					continue
				}
				// Independent copies: the resource wastes this round
				// serving a request that was already fulfilled elsewhere.
				q = q[1:]
				break
			}
			// Serve r now.
			q = q[1:]
			ctx.W.Assign(r, i, ctx.T)
			e.served[r.ID] = true
			break
		}
		e.queues[i] = q
	}
}
