package strategies

import "math"

// UpperBound returns the proven competitive-ratio upper bound for the named
// strategy at deadline window d — the right column of Table 1, Observation
// 3.2 for EDF, Theorem 3.7/3.8 for the local strategies, and the
// maximal-matching argument (ratio 2) for the baselines. ok is false for
// unknown names.
func UpperBound(name string, d int) (bound float64, ok bool) {
	fd := float64(d)
	switch name {
	case "A_fix", "A_current":
		return 2 - 1/fd, true
	case "A_fix_balance":
		// max{2-2/d, 2-3/(d+2), 4/3}: 4/3 at d=2, 7/5 at d=3, 2-2/d beyond.
		b := 4.0 / 3.0
		if v := 2 - 2/fd; v > b {
			b = v
		}
		if v := 2 - 3/(fd+2); v > b {
			b = v
		}
		return b, true
	case "A_eager":
		return (3*fd - 2) / (2*fd - 1), true
	case "A_balance":
		if d == 2 {
			return 4.0 / 3.0, true
		}
		return 6 * (fd - 1) / (4*fd - 3), true
	case "EDF", "EDF_coordinated", "first_fit", "random_fit", "A_local_fix":
		return 2, true
	case "A_local_eager", "A_local_eager_wide":
		return 5.0 / 3.0, true
	}
	return 0, false
}

// LowerBound returns the proven lower bound on the competitive ratio for the
// named strategy at window d — the left column of Table 1 (for A_current the
// d=2 value is 4/3 and the value returned for larger d is the asymptotic
// e/(e-1); for A_balance the formula applies to d = 3x-1). asymptotic
// reports that the bound is a limit rather than exact for this d.
func LowerBound(name string, d int) (bound float64, asymptotic, ok bool) {
	fd := float64(d)
	switch name {
	case "A_fix":
		return 2 - 1/fd, false, true
	case "A_current":
		if d == 2 {
			return 4.0 / 3.0, false, true
		}
		return math.E / (math.E - 1), true, true
	case "A_fix_balance":
		if d == 2 {
			return 4.0 / 3.0, false, true
		}
		return 3 * fd / (2*fd + 2), false, true
	case "A_eager":
		return 4.0 / 3.0, false, true
	case "A_balance":
		if d == 2 {
			return 4.0 / 3.0, false, true
		}
		return (5*fd + 2) / (4*fd + 1), false, true
	case "EDF", "A_local_fix":
		return 2, false, true
	}
	return 0, false, false
}

// UniversalLowerBound is the Theorem 2.6 bound that applies to every
// deterministic online algorithm: 45/41.
func UniversalLowerBound() float64 { return 45.0 / 41.0 }
