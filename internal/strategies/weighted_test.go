package strategies

import (
	"testing"

	"reqsched/internal/core"
	"reqsched/internal/offline"
	"reqsched/internal/workload"
)

func TestWeightedStrategiesValidAndBounded(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		tr := workload.Weighted(workload.Config{N: 5, D: 3, Rounds: 30, Rate: 9, Seed: seed}, 8)
		maxProfit := offline.MaxProfit(tr)
		for _, s := range []core.Strategy{NewFixWeighted(), NewEagerWeighted()} {
			res := core.Run(s, tr)
			if err := core.ValidateLog(tr, res.Log); err != nil {
				t.Fatalf("%s seed %d: %v", s.Name(), seed, err)
			}
			if res.WeightFulfilled > maxProfit {
				t.Fatalf("%s seed %d: weight %d beats offline max profit %d",
					s.Name(), seed, res.WeightFulfilled, maxProfit)
			}
			if res.WeightFulfilled < res.Fulfilled {
				t.Fatalf("%s: weight sum below count", s.Name())
			}
		}
	}
}

func TestEagerWeightedDisplacesLightForHeavy(t *testing.T) {
	// Round 0: a light request is scheduled into the only slot of its
	// window. Round 1: a heavy request arrives that can only use the same
	// resource. EagerWeighted unschedules the light one; FixWeighted, which
	// never reschedules... can't be shown on one slot (the light one is
	// served immediately). Use windows: resource 0 slots rounds 0..2; light
	// requests fill the future, heavy arrives later.
	b := core.NewBuilder(1, 3)
	l1 := b.Add(0, 0) // weight 1 each, fill rounds 0..2
	l2 := b.Add(0, 0)
	l3 := b.Add(0, 0)
	h := b.AddWeighted(1, 10, 0) // heavy, window rounds 1..3
	_ = l1
	_ = l2
	_ = l3
	_ = h
	tr := b.Build()

	fix := core.Run(NewFixWeighted(), tr)
	eager := core.Run(NewEagerWeighted(), tr)
	// Offline max profit: serve two lights (rounds 0, 2... actually rounds
	// 0 and 2 or 0 and 1) + heavy = 12; capacity rounds 0..3 = 4 slots but
	// lights' window ends at 2: all three lights + heavy fit? lights rounds
	// 0,1,2 and heavy round 3: total 13.
	want := offline.MaxProfit(tr)
	if want != 13 {
		t.Fatalf("max profit %d want 13", want)
	}
	if eager.WeightFulfilled != 13 {
		t.Fatalf("eager weighted served weight %d want 13", eager.WeightFulfilled)
	}
	if fix.WeightFulfilled > eager.WeightFulfilled {
		t.Fatalf("fix %d beats eager %d", fix.WeightFulfilled, eager.WeightFulfilled)
	}
}

func TestFixWeightedPrefersHeavyOnArrivalConflict(t *testing.T) {
	// One slot, two simultaneous arrivals: the heavy one (higher ID) must
	// win under weight ordering, lose under plain A_fix's ID ordering.
	b := core.NewBuilder(1, 1)
	b.Add(0, 0)            // light, ID 0
	b.AddWeighted(0, 5, 0) // heavy, ID 1
	tr := b.Build()

	plain := core.Run(NewFix(), tr)
	weighted := core.Run(NewFixWeighted(), tr)
	if plain.WeightFulfilled != 1 {
		t.Fatalf("plain A_fix should serve the light request: %d", plain.WeightFulfilled)
	}
	if weighted.WeightFulfilled != 5 {
		t.Fatalf("weighted A_fix should serve the heavy request: %d", weighted.WeightFulfilled)
	}
}

func TestWeightedDegeneratesOnUniformWeights(t *testing.T) {
	// With all weights 1 the weighted strategies serve as many requests as
	// their unweighted counterparts' class guarantees: compare against the
	// offline optimum bound of 2 (they are greedy/maximal per round).
	for seed := int64(0); seed < 3; seed++ {
		tr := workload.Uniform(workload.Config{N: 5, D: 3, Rounds: 25, Rate: 8, Seed: seed})
		opt := offline.Optimum(tr)
		for _, s := range []core.Strategy{NewFixWeighted(), NewEagerWeighted()} {
			res := core.Run(s, tr)
			if res.WeightFulfilled != res.Fulfilled {
				t.Fatalf("%s: weights on unweighted trace", s.Name())
			}
			slack := float64(tr.N * tr.D)
			if float64(opt) > 2*float64(res.Fulfilled)+slack {
				t.Fatalf("%s seed %d: far outside factor 2", s.Name(), seed)
			}
		}
	}
}

func TestMaxProfitEqualsOptimumUnweighted(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		tr := workload.Uniform(workload.Config{N: 4, D: 3, Rounds: 20, Rate: 7, Seed: seed})
		if offline.MaxProfit(tr) != offline.Optimum(tr) {
			t.Fatalf("seed %d: MaxProfit != Optimum on unweighted trace", seed)
		}
	}
}
