package strategies

import (
	"fmt"

	"reqsched/internal/core"
)

// Service-model support declarations (core.ModelSupporter). Two classes:
//
//   - Scan-based strategies route exclusively through Window.Free /
//     FreeSlotsFor, which are occupancy-aware, so they are correct under any
//     service model with no further changes.
//
//   - Matching-based strategies (the paper's A_* family) plan joint schedules
//     over future window slots through winGraph. At hold=1 each (resource,
//     round) slot expands into cap independent unit vertices and the matching
//     semantics carry over exactly; at hold>1 a planned future start would
//     have to block neighboring rounds' slots, which a bipartite matching
//     cannot express, so those are rejected rather than silently mis-planned.
//
// Strategies implementing neither (the local message-passing family, the
// adaptive harness) are unit-model-only by core.CheckModelSupport's default.

// holdOne accepts any capacity but rejects hold > 1 — the matching-based
// strategy gate.
func holdOne(m core.ServiceModel) error {
	if m.Hold != 1 {
		return fmt.Errorf("matching over future slots supports hold=1 only, not %s", m)
	}
	return nil
}

// SupportsModel implements core.ModelSupporter: first-fit scans free slots.
func (*FirstFit) SupportsModel(core.ServiceModel) error { return nil }

// SupportsModel implements core.ModelSupporter: random-fit scans free slots.
func (*RandomFit) SupportsModel(core.ServiceModel) error { return nil }

// SupportsModel implements core.ModelSupporter: ranking scans free slots.
func (*Ranking) SupportsModel(core.ServiceModel) error { return nil }

// SupportsModel implements core.ModelSupporter: EDF serves only currently
// free resources (at most one service start per resource per round, whatever
// the capacity).
func (*EDF) SupportsModel(core.ServiceModel) error { return nil }

// SupportsModel implements core.ModelSupporter.
func (*Fix) SupportsModel(m core.ServiceModel) error { return holdOne(m) }

// SupportsModel implements core.ModelSupporter.
func (*Current) SupportsModel(m core.ServiceModel) error { return holdOne(m) }

// SupportsModel implements core.ModelSupporter.
func (*FixBalance) SupportsModel(m core.ServiceModel) error { return holdOne(m) }

// SupportsModel implements core.ModelSupporter.
func (*Eager) SupportsModel(m core.ServiceModel) error { return holdOne(m) }

// SupportsModel implements core.ModelSupporter.
func (*Balance) SupportsModel(m core.ServiceModel) error { return holdOne(m) }

// SupportsModel implements core.ModelSupporter.
func (*FixWeighted) SupportsModel(m core.ServiceModel) error { return holdOne(m) }

// SupportsModel implements core.ModelSupporter.
func (*EagerWeighted) SupportsModel(m core.ServiceModel) error { return holdOne(m) }

// SupportsModel on the router forms mirrors the fused strategies; the policy
// Composite delegates its own support decision to its router.

// SupportsModel implements the policy router support check.
func (*FixRouter) SupportsModel(m core.ServiceModel) error { return holdOne(m) }

// SupportsModel implements the policy router support check.
func (*CurrentRouter) SupportsModel(m core.ServiceModel) error { return holdOne(m) }

// SupportsModel implements the policy router support check.
func (*FixBalanceRouter) SupportsModel(m core.ServiceModel) error { return holdOne(m) }

// SupportsModel implements the policy router support check.
func (*EagerRouter) SupportsModel(m core.ServiceModel) error { return holdOne(m) }

// SupportsModel implements the policy router support check.
func (*BalanceRouter) SupportsModel(m core.ServiceModel) error { return holdOne(m) }
