package strategies

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestUpperBoundTableValues(t *testing.T) {
	cases := []struct {
		name string
		d    int
		want float64
	}{
		{"A_fix", 2, 1.5},
		{"A_fix", 10, 1.9},
		{"A_current", 4, 1.75},
		{"A_fix_balance", 2, 4.0 / 3},
		{"A_fix_balance", 3, 7.0 / 5},
		{"A_fix_balance", 4, 1.5},
		{"A_fix_balance", 10, 1.8},
		{"A_eager", 2, 4.0 / 3},
		{"A_eager", 5, 13.0 / 9},
		{"A_balance", 2, 4.0 / 3},
		{"A_balance", 5, 24.0 / 17},
		{"EDF", 3, 2},
		{"A_local_fix", 3, 2},
		{"A_local_eager", 3, 5.0 / 3},
	}
	for _, c := range cases {
		got, ok := UpperBound(c.name, c.d)
		if !ok || !almost(got, c.want) {
			t.Errorf("UpperBound(%s, %d) = %f, %v; want %f", c.name, c.d, got, ok, c.want)
		}
	}
	if _, ok := UpperBound("bogus", 2); ok {
		t.Error("unknown strategy accepted")
	}
}

func TestLowerBoundTableValues(t *testing.T) {
	cases := []struct {
		name string
		d    int
		want float64
		asym bool
	}{
		{"A_fix", 4, 1.75, false},
		{"A_current", 2, 4.0 / 3, false},
		{"A_current", 24, math.E / (math.E - 1), true},
		{"A_fix_balance", 2, 4.0 / 3, false},
		{"A_fix_balance", 6, 18.0 / 14, false},
		{"A_eager", 7, 4.0 / 3, false},
		{"A_balance", 5, 27.0 / 21, false},
		{"EDF", 2, 2, false},
		{"A_local_fix", 9, 2, false},
	}
	for _, c := range cases {
		got, asym, ok := LowerBound(c.name, c.d)
		if !ok || !almost(got, c.want) || asym != c.asym {
			t.Errorf("LowerBound(%s, %d) = %f, %v, %v; want %f, %v",
				c.name, c.d, got, asym, ok, c.want, c.asym)
		}
	}
}

func TestLowerBoundNeverExceedsUpperBound(t *testing.T) {
	for _, name := range []string{"A_fix", "A_current", "A_fix_balance", "A_eager", "A_balance", "EDF", "A_local_fix"} {
		for d := 2; d <= 64; d++ {
			lb, _, ok1 := LowerBound(name, d)
			ub, ok2 := UpperBound(name, d)
			if !ok1 || !ok2 {
				t.Fatalf("%s d=%d: missing bound", name, d)
			}
			if lb > ub+1e-12 {
				t.Errorf("%s d=%d: LB %f > UB %f", name, d, lb, ub)
			}
		}
	}
}

func TestUniversalLowerBoundBelowEveryUpperBound(t *testing.T) {
	u := UniversalLowerBound()
	if !almost(u, 45.0/41.0) {
		t.Fatalf("universal bound %f", u)
	}
	for d := 2; d <= 16; d++ {
		for _, name := range []string{"A_fix", "A_current", "A_fix_balance", "A_eager", "A_balance"} {
			ub, _ := UpperBound(name, d)
			if u > ub {
				t.Errorf("universal LB %f above %s UB %f at d=%d", u, name, ub, d)
			}
		}
	}
}
