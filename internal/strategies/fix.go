package strategies

import (
	"reqsched/internal/core"
	"reqsched/internal/matching"
)

// Fix implements A_fix: every round, the previously computed assignments are
// kept unchanged (no rescheduling, ever), and a maximum number of the
// requests injected this round is matched into the remaining free slots,
// yielding a maximal matching on G_t. Competitive ratio exactly 2 - 1/d
// (Theorems 2.1 and 3.3).
type Fix struct{}

// NewFix returns the A_fix strategy.
func NewFix() *Fix { return &Fix{} }

// Name implements core.Strategy.
func (*Fix) Name() string { return "A_fix" }

// Begin implements core.Strategy.
func (*Fix) Begin(n, d int) {}

// Round implements core.Strategy.
func (*Fix) Round(ctx *core.RoundContext) {
	// Candidates: this round's arrivals first (their count is maximized),
	// then any older unassigned requests (for maximality of the matching on
	// G_t; with no rescheduling their slots can normally never free up, but
	// the rule costs nothing and keeps the matching maximal by construction).
	unassigned := ctx.Unassigned()
	reqs := make([]*core.Request, 0, len(unassigned))
	reqs = append(reqs, ctx.Arrivals...)
	for _, r := range unassigned {
		if r.Arrive < ctx.T {
			reqs = append(reqs, r)
		}
	}
	wg := buildGraph(ctx.W, reqs, true)
	m := newEmptyMatching(wg)
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	// Augmenting in ID order with first-listed-alternative preference: the
	// deterministic member of the A_fix class. Arrivals come first in reqs,
	// so their matching is maximum before older requests are considered.
	extendFromLeft(wg, m, order[:len(ctx.Arrivals)])
	extendFromLeft(wg, m, order[len(ctx.Arrivals):])
	wg.apply(ctx.W, m)
}

// FixBalance implements A_fix_balance: like A_fix it never reschedules, but
// among the admissible extensions it maximizes F = sum_j X_{t+j}(n+1)^(d-j) —
// lexicographically filling the earliest rounds first, which both serves
// requests as early as possible and balances load across resources.
// Competitive ratio between 3d/(2d+2) and 2 - 2/d for d > 3 (Theorems 2.3
// and 3.4).
type FixBalance struct{}

// NewFixBalance returns the A_fix_balance strategy.
func NewFixBalance() *FixBalance { return &FixBalance{} }

// Name implements core.Strategy.
func (*FixBalance) Name() string { return "A_fix_balance" }

// Begin implements core.Strategy.
func (*FixBalance) Begin(n, d int) {}

// Round implements core.Strategy.
func (*FixBalance) Round(ctx *core.RoundContext) {
	reqs := ctx.Unassigned()
	wg := buildGraph(ctx.W, reqs, true)
	// The F-maximal extension over the free slots: matched slot sets form a
	// transversal matroid, so processing slots in ascending round order with
	// one augmenting search each yields the weight-greedy basis — maximum
	// cardinality with lexicographically maximal (X_t, ..., X_{t+d-1}).
	classOf := wg.roundClasses(wg.depth)
	m := lexMax(wg, classOf)
	// Serve the oldest requests in the current round (see eager.go); this is
	// the member Theorem 2.4's d=2 bound for A_fix_balance reasons about.
	matching.PreferLowAtClass(wg.g, m, classOf, 0)
	wg.apply(ctx.W, m)
}
