package strategies

import (
	"reqsched/internal/core"
)

// Fix implements A_fix: every round, the previously computed assignments are
// kept unchanged (no rescheduling, ever), and a maximum number of the
// requests injected this round is matched into the remaining free slots,
// yielding a maximal matching on G_t. Competitive ratio exactly 2 - 1/d
// (Theorems 2.1 and 3.3).
type Fix struct {
	sc roundScratch
}

// NewFix returns the A_fix strategy.
func NewFix() *Fix { return &Fix{} }

// Name implements core.Strategy.
func (*Fix) Name() string { return "A_fix" }

// Begin implements core.Strategy.
func (*Fix) Begin(n, d int) {}

// Round implements core.Strategy.
func (s *Fix) Round(ctx *core.RoundContext) {
	routeFix(ctx, ctx.Pending, &s.sc)
}

// routeFix is the A_fix round body over an arbitrary queue: the composable
// router form. Arrivals are identified by arrival round rather than taken
// from ctx.Arrivals so that a composed admission axis can filter and an
// order axis reorder the queue; on queue == ctx.Pending this is exactly the
// fused A_fix round.
func routeFix(ctx *core.RoundContext, queue []*core.Request, sc *roundScratch) {
	// Candidates: this round's arrivals first (their count is maximized),
	// then any older unassigned requests (for maximality of the matching on
	// G_t; with no rescheduling their slots can normally never free up, but
	// the rule costs nothing and keeps the matching maximal by construction).
	reqs := sc.reqs[:0]
	for _, r := range queue {
		if r.Arrive == ctx.T {
			reqs = append(reqs, r)
		}
	}
	narr := len(reqs)
	for _, r := range queue {
		if r.Arrive < ctx.T && !ctx.W.Assigned(r) {
			reqs = append(reqs, r)
		}
	}
	sc.reqs = reqs
	wg := sc.buildGraph(ctx.W, reqs, true)
	m := sc.emptyMatching()
	order := sc.identOrder(len(reqs))
	// Augmenting in queue order with first-listed-alternative preference: the
	// deterministic member of the A_fix class. Arrivals come first in reqs,
	// so their matching is maximum before older requests are considered.
	sc.ms.ExtendFromLeft(wg.g, m, order[:narr])
	sc.ms.ExtendFromLeft(wg.g, m, order[narr:])
	wg.apply(ctx.W, m)
}

// FixBalance implements A_fix_balance: like A_fix it never reschedules, but
// among the admissible extensions it maximizes F = sum_j X_{t+j}(n+1)^(d-j) —
// lexicographically filling the earliest rounds first, which both serves
// requests as early as possible and balances load across resources.
// Competitive ratio between 3d/(2d+2) and 2 - 2/d for d > 3 (Theorems 2.3
// and 3.4).
type FixBalance struct {
	sc roundScratch
}

// NewFixBalance returns the A_fix_balance strategy.
func NewFixBalance() *FixBalance { return &FixBalance{} }

// Name implements core.Strategy.
func (*FixBalance) Name() string { return "A_fix_balance" }

// Begin implements core.Strategy.
func (*FixBalance) Begin(n, d int) {}

// Round implements core.Strategy.
func (s *FixBalance) Round(ctx *core.RoundContext) {
	routeFixBalance(ctx, ctx.Pending, &s.sc)
}

// routeFixBalance is the A_fix_balance round body over an arbitrary queue:
// the composable router form.
func routeFixBalance(ctx *core.RoundContext, queue []*core.Request, sc *roundScratch) {
	reqs := sc.reqs[:0]
	for _, r := range queue {
		if !ctx.W.Assigned(r) {
			reqs = append(reqs, r)
		}
	}
	sc.reqs = reqs
	wg := sc.buildGraph(ctx.W, reqs, true)
	// The F-maximal extension over the free slots: matched slot sets form a
	// transversal matroid, so processing slots in ascending round order with
	// one augmenting search each yields the weight-greedy basis — maximum
	// cardinality with lexicographically maximal (X_t, ..., X_{t+d-1}).
	classOf := sc.roundClasses(wg.depth)
	m := sc.emptyMatching()
	sc.ms.LexMaxExtend(wg.g, m, classOf)
	// Serve the oldest requests in the current round (see eager.go); this is
	// the member Theorem 2.4's d=2 bound for A_fix_balance reasons about.
	sc.ms.PreferLowAtClass(wg.g, m, classOf, 0)
	wg.apply(ctx.W, m)
}
