package strategies

import (
	"fmt"
	"testing"

	"reqsched/internal/core"
	"reqsched/internal/offline"
	"reqsched/internal/workload"
)

// upperBound wraps UpperBound, panicking on unknown names so tests cannot
// silently skip a strategy.
func upperBound(name string, d int) float64 {
	b, ok := UpperBound(name, d)
	if !ok {
		panic("unknown strategy " + name)
	}
	return b
}

// allStrategies returns every strategy under test, including the seeded
// random baseline.
func allStrategies() []core.Strategy {
	var out []core.Strategy
	for _, s := range New() {
		out = append(out, s)
	}
	out = append(out, NewRandomFit(7))
	return out
}

// traces used across the validity and bound tests.
func testTraces(seed int64) map[string]*core.Trace {
	return map[string]*core.Trace{
		"uniform": workload.Uniform(workload.Config{
			N: 6, D: 3, Rounds: 40, Rate: 7, Seed: seed,
		}),
		"zipf": workload.Zipf(workload.Config{
			N: 8, D: 4, Rounds: 30, Rate: 10, Seed: seed,
		}, 1.5),
		"bursty": workload.Bursty(workload.Config{
			N: 5, D: 2, Rounds: 40, Rate: 2, Seed: seed,
		}, 3, 5, 12),
		"video": workload.VideoServer(workload.Config{
			N: 8, D: 5, Rounds: 30, Rate: 9, Seed: seed,
		}, 40, 1.3),
		"overload": workload.Uniform(workload.Config{
			N: 3, D: 2, Rounds: 25, Rate: 8, Seed: seed,
		}),
	}
}

func TestAllStrategiesProduceValidSchedules(t *testing.T) {
	for name, tr := range testTraces(100) {
		for _, s := range allStrategies() {
			res := core.Run(s, tr)
			if err := core.ValidateLog(tr, res.Log); err != nil {
				t.Fatalf("%s on %s: %v", s.Name(), name, err)
			}
			if res.Fulfilled+res.Expired != res.Requests {
				t.Fatalf("%s on %s: %d fulfilled + %d expired != %d requests",
					s.Name(), name, res.Fulfilled, res.Expired, res.Requests)
			}
		}
	}
}

func TestProvenUpperBoundsHoldOnRandomWorkloads(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		for name, tr := range testTraces(200 + seed) {
			opt := offline.Optimum(tr)
			for _, s := range allStrategies() {
				res := core.Run(s, tr)
				bound := upperBound(s.Name(), tr.D)
				// The competitive definition allows an additive constant;
				// N*D generously covers the boundary effects of a finite
				// trace.
				slack := float64(tr.N * tr.D)
				if float64(opt) > bound*float64(res.Fulfilled)+slack {
					t.Errorf("%s on %s (seed %d): OPT %d > %.3f * %d + %.0f",
						s.Name(), name, seed, opt, bound, res.Fulfilled, slack)
				}
				if res.Fulfilled > opt {
					t.Errorf("%s on %s: ALG %d beats OPT %d", s.Name(), name, res.Fulfilled, opt)
				}
			}
		}
	}
}

func TestStrategiesDeterministic(t *testing.T) {
	tr := workload.Uniform(workload.Config{N: 5, D: 3, Rounds: 30, Rate: 6, Seed: 42})
	for _, s := range allStrategies() {
		a := core.Run(s, tr)
		b := core.Run(s, tr)
		if a.Fulfilled != b.Fulfilled || len(a.Log) != len(b.Log) {
			t.Fatalf("%s not deterministic", s.Name())
		}
		for i := range a.Log {
			if a.Log[i] != b.Log[i] {
				t.Fatalf("%s log differs at %d", s.Name(), i)
			}
		}
	}
}

// fixNoRescheduleProbe wraps A_fix-family strategies and fails the test if an
// assignment ever moves or disappears (other than by being served).
type fixNoRescheduleProbe struct {
	inner core.Strategy
	t     *testing.T
	prev  map[int][2]int // request ID -> (res, round)
}

func (p *fixNoRescheduleProbe) Name() string   { return p.inner.Name() + "+probe" }
func (p *fixNoRescheduleProbe) Begin(n, d int) { p.prev = map[int][2]int{}; p.inner.Begin(n, d) }
func (p *fixNoRescheduleProbe) Round(ctx *core.RoundContext) {
	p.inner.Round(ctx)
	for id, loc := range p.prev {
		if loc[1] < ctx.T {
			delete(p.prev, id) // served in an earlier round
			continue
		}
		got := ctx.W.At(loc[0], loc[1])
		if got == nil || got.ID != id {
			p.t.Fatalf("%s moved request %d away from (%d,%d) at round %d",
				p.inner.Name(), id, loc[0], loc[1], ctx.T)
		}
	}
	for _, a := range ctx.W.Snapshot() {
		p.prev[a.Req.ID] = [2]int{a.Res, a.Round}
	}
}

func TestFixFamilyNeverReschedules(t *testing.T) {
	for _, inner := range []core.Strategy{NewFix(), NewFixBalance(), NewFirstFit()} {
		tr := workload.Uniform(workload.Config{N: 5, D: 4, Rounds: 30, Rate: 8, Seed: 11})
		core.Run(&fixNoRescheduleProbe{inner: inner, t: t}, tr)
	}
}

// keepScheduledProbe verifies the A_eager/A_balance invariant: the set of
// scheduled requests never shrinks within a round (previously scheduled
// requests may move but stay scheduled).
type keepScheduledProbe struct {
	inner core.Strategy
	t     *testing.T
	ids   map[int]bool
}

func (p *keepScheduledProbe) Name() string   { return p.inner.Name() + "+probe" }
func (p *keepScheduledProbe) Begin(n, d int) { p.ids = map[int]bool{}; p.inner.Begin(n, d) }
func (p *keepScheduledProbe) Round(ctx *core.RoundContext) {
	p.inner.Round(ctx)
	now := map[int]bool{}
	for _, a := range ctx.W.Snapshot() {
		now[a.Req.ID] = true
	}
	for id := range p.ids {
		if !now[id] {
			p.t.Fatalf("%s unscheduled request %d at round %d", p.inner.Name(), id, ctx.T)
		}
	}
	// Requests served at the end of this round leave the window; drop them.
	p.ids = map[int]bool{}
	for _, a := range ctx.W.Snapshot() {
		if a.Round > ctx.T {
			p.ids[a.Req.ID] = true
		}
	}
}

func TestEagerFamilyKeepsScheduledRequests(t *testing.T) {
	for _, inner := range []core.Strategy{NewEager(), NewBalance()} {
		for seed := int64(0); seed < 3; seed++ {
			tr := workload.Uniform(workload.Config{N: 5, D: 4, Rounds: 30, Rate: 8, Seed: seed})
			core.Run(&keepScheduledProbe{inner: inner, t: t}, tr)
		}
	}
}

func TestFixPrefersFirstListedAlternative(t *testing.T) {
	// Two requests, disjoint resources, no contention: both must land on
	// their first-listed alternative at the earliest slot.
	b := core.NewBuilder(4, 2)
	b.Add(0, 2, 0)
	b.Add(0, 3, 1)
	tr := b.Build()
	res := core.Run(NewFix(), tr)
	if res.Fulfilled != 2 {
		t.Fatalf("fulfilled %d", res.Fulfilled)
	}
	for _, f := range res.Log {
		if f.Res != f.Req.Alts[0] || f.Round != 0 {
			t.Fatalf("request %d served at (%d,%d), want first alternative at round 0",
				f.Req.ID, f.Res, f.Round)
		}
	}
}

func TestCurrentServesOnlyCurrentRound(t *testing.T) {
	// d requests on one resource pair: A_current serves 2 per round (one per
	// resource) because it never plans ahead — same totals as planning, but
	// pending requests stay live between rounds.
	b := core.NewBuilder(2, 3)
	for i := 0; i < 6; i++ {
		b.Add(0, 0, 1)
	}
	tr := b.Build()
	res := core.Run(NewCurrent(), tr)
	if res.Fulfilled != 6 {
		t.Fatalf("fulfilled %d want 6", res.Fulfilled)
	}
	perRound := map[int]int{}
	for _, f := range res.Log {
		perRound[f.Round]++
	}
	for r := 0; r < 3; r++ {
		if perRound[r] != 2 {
			t.Fatalf("round %d served %d, want 2", r, perRound[r])
		}
	}
}

func TestEagerReschedulingBeatsFixOnTheorem21Input(t *testing.T) {
	// One phase of the Theorem 2.1 construction: A_fix loses d-1 requests
	// per group because it cannot reschedule; A_eager recovers them.
	d := 4
	// Resources S1..S4 are indices 0..3.
	b2 := core.NewBuilder(4, d)
	b2.Block(0, 1, 2) // S2,S3 blocked
	for i := 0; i < d-1; i++ {
		b2.Add(d-1, 1, 0) // R1: S2 first, S1 second
		b2.Add(d-1, 2, 3) // R2: S3 first, S4 second
	}
	b2.Block(d, 1, 2) // second block on S2,S3
	tr2 := b2.Build()

	fix := core.Run(NewFix(), tr2)
	eager := core.Run(NewEager(), tr2)
	opt := offline.Optimum(tr2)
	if eager.Fulfilled <= fix.Fulfilled {
		t.Fatalf("eager %d should beat fix %d", eager.Fulfilled, fix.Fulfilled)
	}
	if eager.Fulfilled != opt {
		t.Logf("eager %d vs opt %d (informational)", eager.Fulfilled, opt)
	}
}

func TestEDFIndependentWastesSlotsCoordinatedDoesNot(t *testing.T) {
	// Two requests naming (0,1); independent EDF enqueues copies at both.
	// Round 0: resource 0 serves r0, resource 1 also picks r0's copy first?
	// Queues are (r0,r1) at both; res 0 serves r0; res 1's head r0 is now
	// served: independent wastes the slot, coordinated serves r1.
	b := core.NewBuilder(2, 1)
	b.Add(0, 0, 1)
	b.Add(0, 0, 1)
	tr := b.Build()
	ind := core.Run(NewEDF(), tr)
	coord := core.Run(NewEDFCoordinated(), tr)
	if ind.Fulfilled != 1 {
		t.Fatalf("independent EDF fulfilled %d want 1", ind.Fulfilled)
	}
	if coord.Fulfilled != 2 {
		t.Fatalf("coordinated EDF fulfilled %d want 2", coord.Fulfilled)
	}
}

func TestEDFCChoiceWithinCOfOptimum(t *testing.T) {
	// Observation 3.2 extension: with c alternatives EDF is c-competitive.
	for _, c := range []int{1, 2, 3} {
		for seed := int64(0); seed < 5; seed++ {
			tr := workload.CChoice(workload.Config{
				N: 6, D: 3, Rounds: 25, Rate: 8, Seed: seed,
			}, c)
			res := core.Run(NewEDF(), tr)
			opt := offline.Optimum(tr)
			slack := float64(tr.N * tr.D)
			if float64(opt) > float64(c)*float64(res.Fulfilled)+slack {
				t.Errorf("c=%d seed=%d: OPT %d > %d * %d + %.0f",
					c, seed, opt, c, res.Fulfilled, slack)
			}
		}
	}
}

func TestEDFSingleChoiceOptimal(t *testing.T) {
	// Observation 3.1 on the full strategy implementation (not just the
	// offline helper): with one alternative EDF fulfills the optimum.
	for seed := int64(0); seed < 10; seed++ {
		tr := workload.SingleChoice(workload.Config{
			N: 4, D: 4, Rounds: 30, Rate: 6, Seed: seed,
		})
		res := core.Run(NewEDF(), tr)
		opt := offline.Optimum(tr)
		if res.Fulfilled != opt {
			t.Fatalf("seed %d: EDF %d != OPT %d", seed, res.Fulfilled, opt)
		}
	}
}

func TestBalanceAtLeastEagerOnSmoothLoad(t *testing.T) {
	// Informational comparison: on smooth random load the balance objective
	// should not hurt. Not a theorem; assert only that both stay within
	// their bounds and report the counts.
	tr := workload.Uniform(workload.Config{N: 6, D: 4, Rounds: 50, Rate: 6, Seed: 5})
	eager := core.Run(NewEager(), tr)
	balance := core.Run(NewBalance(), tr)
	opt := offline.Optimum(tr)
	t.Logf("opt=%d eager=%d balance=%d", opt, eager.Fulfilled, balance.Fulfilled)
	if eager.Fulfilled > opt || balance.Fulfilled > opt {
		t.Fatal("online beats offline optimum")
	}
}

func TestRegistryNamesUnique(t *testing.T) {
	m := New()
	if len(m) != 8 {
		t.Fatalf("registry has %d strategies", len(m))
	}
	for name, s := range m {
		if s.Name() != name {
			t.Fatalf("registry key %q != name %q", name, s.Name())
		}
	}
	if _, ok := m["A_fix"]; !ok {
		t.Fatal("A_fix missing from New()")
	}
	if _, ok := m["nope"]; ok {
		t.Fatal("unexpected strategy in New()")
	}
	if len(Global()) != 5 {
		t.Fatal("Global() should list the five Table 1 strategies")
	}
}

func TestStrategiesScaleSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// A larger run to catch accidental quadratic blowups and index bugs at
	// scale; validity checked end to end.
	tr := workload.Uniform(workload.Config{N: 20, D: 6, Rounds: 200, Rate: 25, Seed: 77})
	for _, s := range Global() {
		res := core.Run(s, tr)
		if err := core.ValidateLog(tr, res.Log); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Fulfilled == 0 {
			t.Fatalf("%s served nothing", s.Name())
		}
	}
}

func ExampleNewBalance() {
	b := core.NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 1, 0)
	tr := b.Build()
	res := core.Run(NewBalance(), tr)
	fmt.Println(res.Fulfilled)
	// Output: 2
}

func TestStrategiesAreOnline(t *testing.T) {
	// The defining property of an online algorithm: its decisions through
	// round k depend only on arrivals up to round k. Truncate a trace after
	// round k and compare service logs on rounds < k — any divergence means
	// a strategy peeked at the future.
	full := workload.Uniform(workload.Config{N: 5, D: 3, Rounds: 24, Rate: 7, Seed: 31})
	const k = 12
	b := core.NewBuilder(full.N, full.D)
	for t0, rs := range full.Arrivals {
		if t0 >= k {
			break
		}
		for i := range rs {
			id := b.AddWindow(t0, rs[i].D, rs[i].Alts...)
			b.SetWeight(id, rs[i].W)
		}
	}
	truncated := b.Build()

	for _, s := range allStrategies() {
		if s.Name() == "random_fit" || s.Name() == "ranking" {
			// Seeded randomness consumes draws per arrival, so logs stay
			// aligned too — include them.
		}
		fullLog := core.Run(s, full).Log
		truncLog := core.Run(s, truncated).Log
		early := func(log []core.Fulfillment) []core.Fulfillment {
			var out []core.Fulfillment
			for _, f := range log {
				if f.Round < k {
					out = append(out, f)
				}
			}
			return out
		}
		fe, te := early(fullLog), early(truncLog)
		if len(fe) != len(te) {
			t.Fatalf("%s: served %d vs %d before round %d — future arrivals leaked",
				s.Name(), len(fe), len(te), k)
		}
		for i := range fe {
			if fe[i].Req.ID != te[i].Req.ID || fe[i].Res != te[i].Res || fe[i].Round != te[i].Round {
				t.Fatalf("%s: entry %d differs (%v vs %v) — future arrivals leaked",
					s.Name(), i, fe[i], te[i])
			}
		}
	}
}
