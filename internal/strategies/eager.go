package strategies

import (
	"reqsched/internal/core"
	"reqsched/internal/matching"
)

// Eager implements A_eager: every round it recomputes a maximum matching over
// the whole known subgraph G_t subject to (1) the number of requests served
// in the current round is maximal and (2) every previously scheduled request
// remains scheduled (it may move to a different slot). Competitive ratio
// between 4/3 and (3d-2)/(2d-1) (Theorems 2.4 and 3.5).
//
// Implementation: snapshot the inherited schedule, reset the window, compute
// the slot-side weight-class greedy with two classes ("current round" before
// "everything later") — a maximum matching maximizing current-round service —
// then restore coverage of previously scheduled requests via the constructive
// Mendelsohn–Dulmage merge, which keeps the matched slot set (and hence both
// optimality properties) intact.
type Eager struct {
	sc roundScratch
}

// NewEager returns the A_eager strategy.
func NewEager() *Eager { return &Eager{} }

// Name implements core.Strategy.
func (*Eager) Name() string { return "A_eager" }

// Begin implements core.Strategy.
func (*Eager) Begin(n, d int) {}

// Round implements core.Strategy.
func (s *Eager) Round(ctx *core.RoundContext) {
	routeReschedule(ctx, ctx.Pending, 2, &s.sc)
}

// Balance implements A_balance: like A_eager it recomputes over the whole
// subgraph and keeps previously scheduled requests scheduled, but it picks
// the maximum matching maximizing F = sum_j X_{t+j}(n+1)^(d-j), i.e. it fills
// rounds lexicographically from the current one outward. The paper's best
// simple strategy: ratio between (5d+2)/(4d+1) and 6(d-1)/(4d-3)
// (Theorems 2.5 and 3.6).
type Balance struct {
	sc roundScratch
}

// NewBalance returns the A_balance strategy.
func NewBalance() *Balance { return &Balance{} }

// Name implements core.Strategy.
func (*Balance) Name() string { return "A_balance" }

// Begin implements core.Strategy.
func (*Balance) Begin(n, d int) {}

// Round implements core.Strategy.
func (s *Balance) Round(ctx *core.RoundContext) {
	routeReschedule(ctx, ctx.Pending, 0, &s.sc)
}

// routeReschedule is the shared A_eager / A_balance round body over an
// arbitrary queue: the composable router form. maxClasses caps the slot
// weight classes: 2 for A_eager (current round vs later), 0 for A_balance
// (0 means "one class per window round": full lexicographic F). All graph,
// matching and snapshot storage comes from sc and is reused across rounds.
// The queue order becomes the left-vertex order of the matching graph, so it
// steers both the augmenting searches and the PreferLowAtClass exchange
// (which requests are served in the current round).
func routeReschedule(ctx *core.RoundContext, queue []*core.Request, maxClasses int, sc *roundScratch) {
	reqs := queue
	sc.snap = ctx.W.AppendAssignments(sc.snap[:0])
	ctx.W.Reset()
	wg := sc.buildGraph(ctx.W, reqs, false)
	if maxClasses <= 0 {
		maxClasses = wg.depth
	}
	classOf := sc.roundClasses(maxClasses)
	m := sc.emptyMatching()
	sc.ms.LexMaxExtend(wg.g, m, classOf)
	if len(sc.snap) > 0 {
		cover := sc.coverMatching(sc.snap)
		matching.CoverLeft(wg.g, m, cover)
	}
	// Among the admissible matchings, serve the oldest pending requests in
	// the current round — the member of the strategy class the lower-bound
	// proofs (Theorems 2.4, 2.5) describe. The exchange preserves
	// cardinality, the per-class slot counts, and scheduled requests.
	sc.ms.PreferLowAtClass(wg.g, m, classOf, 0)
	wg.apply(ctx.W, m)
}
