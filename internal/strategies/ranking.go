package strategies

import "reqsched/internal/core"

// Ranking is a randomized strategy in the spirit of the RANKING algorithm of
// Karp, Vazirani and Vazirani [KVV90], which the paper's related-work section
// discusses: every time slot carries a random rank fixed before the sequence
// starts, and each arriving request is matched to the admissible free slot of
// minimum rank, never to be rescheduled. KVV prove e/(e-1)-competitiveness
// for one-shot online bipartite matching; in the deadline model it is an
// extension experiment — the interesting property is that its behavior does
// not depend on the listing order or injection order the deterministic
// lower-bound adversaries exploit (only on the seed), so those constructions
// lose most of their force against it.
//
// Slot ranks are derived from the seed with a SplitMix64-style hash of
// (resource, round), so they need no storage and the strategy is
// deterministic per seed.
type Ranking struct {
	seed uint64
}

// NewRanking returns the RANKING-style strategy with the given seed.
func NewRanking(seed int64) *Ranking { return &Ranking{seed: uint64(seed)} }

// Name implements core.Strategy.
func (*Ranking) Name() string { return "ranking" }

// Begin implements core.Strategy.
func (s *Ranking) Begin(n, d int) {}

// rank returns the slot's random rank.
func (s *Ranking) rank(res, round int) uint64 {
	x := s.seed ^ (uint64(res)<<32 + uint64(uint32(round)))
	// SplitMix64 finalizer.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Round implements core.Strategy.
func (s *Ranking) Round(ctx *core.RoundContext) {
	for _, r := range ctx.Arrivals {
		slots := ctx.W.FreeSlotsFor(r)
		if len(slots) == 0 {
			continue
		}
		best := slots[0]
		bestRank := s.rank(best.Res, best.Round)
		for _, sl := range slots[1:] {
			if rk := s.rank(sl.Res, sl.Round); rk < bestRank {
				best, bestRank = sl, rk
			}
		}
		ctx.W.Assign(r, best.Res, best.Round)
	}
}
