package strategies

import (
	"testing"

	"reqsched/internal/core"
	"reqsched/internal/offline"
	"reqsched/internal/workload"
)

// Tests for the extensions the paper sketches: heterogeneous per-request
// deadlines ("the observation will also hold if the requests have different
// deadlines") and c >= 2 alternatives per request. The engine and the
// matching-based strategies support both without special-casing — these
// tests pin that down.

func TestAllStrategiesValidWithMixedDeadlines(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		tr := workload.MixedDeadlines(workload.Config{
			N: 6, D: 5, Rounds: 40, Rate: 8, Seed: seed,
		})
		opt := offline.Optimum(tr)
		for _, s := range allStrategies() {
			res := core.Run(s, tr)
			if err := core.ValidateLog(tr, res.Log); err != nil {
				t.Fatalf("%s seed %d: %v", s.Name(), seed, err)
			}
			if res.Fulfilled > opt {
				t.Fatalf("%s seed %d: beats OPT", s.Name(), seed)
			}
			// EDF stays 2-competitive with heterogeneous deadlines
			// (Observation 3.2's extension); the other strategies are only
			// checked for validity and dominance since Table 1's proofs
			// assume a uniform window.
			if s.Name() == "EDF" {
				slack := float64(tr.N * tr.D)
				if float64(opt) > 2*float64(res.Fulfilled)+slack {
					t.Fatalf("EDF seed %d: OPT %d > 2*%d + %.0f", seed, opt, res.Fulfilled, slack)
				}
			}
		}
	}
}

func TestReschedulersBeatFixFamilyOnMixedDeadlines(t *testing.T) {
	// Sanity on ordering: the rescheduling strategies should not lose to
	// their fix-family counterparts across a batch of mixed-deadline
	// workloads (aggregate, not per-seed, since single seeds can tie).
	var fix, eager int
	for seed := int64(0); seed < 8; seed++ {
		tr := workload.MixedDeadlines(workload.Config{
			N: 5, D: 4, Rounds: 40, Rate: 8, Seed: seed,
		})
		fix += core.Run(NewFix(), tr).Fulfilled
		eager += core.Run(NewEager(), tr).Fulfilled
	}
	if eager < fix {
		t.Fatalf("A_eager total %d below A_fix total %d", eager, fix)
	}
}

func TestGlobalStrategiesHandleCAlternatives(t *testing.T) {
	// The matching-based strategies accept any number of alternatives per
	// request; with more choices service can only improve in aggregate.
	for _, c := range []int{1, 2, 3, 4} {
		tr := workload.CChoice(workload.Config{N: 6, D: 3, Rounds: 30, Rate: 9, Seed: 20}, c)
		opt := offline.Optimum(tr)
		for _, s := range Global() {
			res := core.Run(s, tr)
			if err := core.ValidateLog(tr, res.Log); err != nil {
				t.Fatalf("%s c=%d: %v", s.Name(), c, err)
			}
			if res.Fulfilled > opt {
				t.Fatalf("%s c=%d beats OPT", s.Name(), c)
			}
		}
	}
}

func TestMoreChoicesServeMoreInAggregate(t *testing.T) {
	// With identical arrival patterns, raising c from 1 to 3 must not hurt
	// A_balance's aggregate throughput. (Not guaranteed per-seed by theory,
	// but a 10-seed aggregate regression would indicate a bug.)
	total := map[int]int{}
	for _, c := range []int{1, 3} {
		for seed := int64(0); seed < 10; seed++ {
			tr := workload.CChoice(workload.Config{N: 5, D: 2, Rounds: 30, Rate: 9, Seed: seed}, c)
			total[c] += core.Run(NewBalance(), tr).Fulfilled
		}
	}
	if total[3] < total[1] {
		t.Fatalf("3-choice total %d below 1-choice total %d", total[3], total[1])
	}
}

func TestSingleAlternativeNearOptimal(t *testing.T) {
	// With one alternative EDF is exactly optimal (Observation 3.1). The
	// maximum-matching strategies are *not* EDF — their oldest-first
	// tie-break can serve a relaxed old request ahead of an urgent young
	// one and lose to future arrivals — but each round's matching is
	// maximum over the known subgraph, so the loss stays marginal. Empirical
	// observation worth pinning: within 2% of OPT over these workloads,
	// while EDF hits OPT exactly.
	for seed := int64(0); seed < 6; seed++ {
		tr := workload.SingleChoice(workload.Config{N: 4, D: 4, Rounds: 30, Rate: 6, Seed: seed})
		opt := offline.Optimum(tr)
		if edf := core.Run(NewEDF(), tr); edf.Fulfilled != opt {
			t.Fatalf("EDF seed %d: %d != OPT %d", seed, edf.Fulfilled, opt)
		}
		for _, s := range []core.Strategy{NewBalance(), NewEager()} {
			res := core.Run(s, tr)
			if float64(res.Fulfilled) < 0.98*float64(opt) {
				t.Fatalf("%s seed %d: %d far below OPT %d", s.Name(), seed, res.Fulfilled, opt)
			}
		}
	}
}

func TestMixedDeadlineWindowDepthHandling(t *testing.T) {
	// A request with a window longer than the trace default must be
	// schedulable across its whole window (the engine sizes the window to
	// MaxD). Hand construction: default d=2 but one request with d=6.
	b := core.NewBuilder(1, 2)
	b.AddWindow(0, 6, 0)
	for i := 0; i < 3; i++ {
		b.AddWindow(0, 2, 0) // three short-deadline requests
	}
	tr := b.Build()
	res := core.Run(NewBalance(), tr)
	// Capacity rounds 0..5 on one resource: serve the two short ones in
	// rounds 0..1 (third expires) and the long one later.
	if res.Fulfilled != 3 {
		t.Fatalf("fulfilled %d want 3", res.Fulfilled)
	}
	long := tr.Requests()[0]
	for _, f := range res.Log {
		if f.Req.ID == long.ID && f.Round < 2 {
			t.Fatalf("long request served at %d, crowding out short ones", f.Round)
		}
	}
}

func TestRankingValidAndWithinTwo(t *testing.T) {
	// RANKING-style greedy never reschedules, so the maximal-matching
	// argument bounds it by 2 like the other greedy baselines.
	for seed := int64(0); seed < 4; seed++ {
		tr := workload.Uniform(workload.Config{N: 6, D: 3, Rounds: 30, Rate: 8, Seed: seed})
		s := NewRanking(seed + 100)
		res := core.Run(s, tr)
		if err := core.ValidateLog(tr, res.Log); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt := offline.Optimum(tr)
		slack := float64(tr.N * tr.D)
		if float64(opt) > 2*float64(res.Fulfilled)+slack {
			t.Fatalf("seed %d: OPT %d > 2*%d + %.0f", seed, opt, res.Fulfilled, slack)
		}
	}
}

func TestRankingDeterministicPerSeed(t *testing.T) {
	tr := workload.Uniform(workload.Config{N: 5, D: 3, Rounds: 20, Rate: 7, Seed: 1})
	a := core.Run(NewRanking(7), tr)
	b := core.Run(NewRanking(7), tr)
	c := core.Run(NewRanking(8), tr)
	if a.Fulfilled != b.Fulfilled || len(a.Log) != len(b.Log) {
		t.Fatal("same seed differs")
	}
	_ = c // different seed may or may not differ; only determinism matters
}

func TestAllStrategiesHandleDEqualsOne(t *testing.T) {
	// d=1: every request must be served in its arrival round; the window
	// degenerates to a single row. All strategies must stay valid and the
	// matching ones optimal per round (the graph is one row).
	b := core.NewBuilder(3, 1)
	for t0 := 0; t0 < 8; t0++ {
		b.Add(t0, 0, 1)
		b.Add(t0, 1, 2)
		b.Add(t0, 0, 2)
		b.Add(t0, 2, 0) // fourth request: one must fail each round
	}
	tr := b.Build()
	opt := offline.Optimum(tr)
	if opt != 24 { // 3 per round
		t.Fatalf("opt %d", opt)
	}
	for _, s := range allStrategies() {
		res := core.Run(s, tr)
		if err := core.ValidateLog(tr, res.Log); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
	for _, s := range Global() {
		res := core.Run(s, tr)
		if res.Fulfilled != opt {
			t.Fatalf("%s: %d != %d (per-round maximum matching at d=1)",
				s.Name(), res.Fulfilled, opt)
		}
	}
}

func TestStrategiesOnSingleResource(t *testing.T) {
	// n=1 degenerate: only single-alternative requests are possible.
	b := core.NewBuilder(1, 3)
	for t0 := 0; t0 < 5; t0++ {
		b.Add(t0, 0)
		b.Add(t0, 0)
	}
	tr := b.Build()
	opt := offline.Optimum(tr)
	for _, s := range Global() {
		res := core.Run(s, tr)
		if err := core.ValidateLog(tr, res.Log); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Fulfilled > opt {
			t.Fatalf("%s beats OPT", s.Name())
		}
	}
}

func TestQuietRoundsBetweenBursts(t *testing.T) {
	// Long gaps with no arrivals: windows roll over repeatedly; assert the
	// ring buffer state stays clean across the gaps.
	b := core.NewBuilder(2, 3)
	b.Add(0, 0, 1)
	b.Add(50, 1, 0)
	b.Add(100, 0, 1)
	tr := b.Build()
	for _, s := range allStrategies() {
		res := core.Run(s, tr)
		if res.Fulfilled != 3 {
			t.Fatalf("%s: fulfilled %d of 3 across quiet gaps", s.Name(), res.Fulfilled)
		}
	}
}

func TestTrapMixSeparatesFixFromReschedulers(t *testing.T) {
	// The embedded Theorem 2.1 traps must hurt A_fix measurably more than
	// A_balance across seeds.
	var fixLoss, balLoss int
	for seed := int64(0); seed < 4; seed++ {
		tr := workload.TrapMix(workload.Config{N: 8, D: 4, Rounds: 60, Rate: 4, Seed: seed}, 10)
		fixLoss += core.Run(NewFix(), tr).Expired
		balLoss += core.Run(NewBalance(), tr).Expired
	}
	if fixLoss <= balLoss {
		t.Fatalf("traps did not separate: fix lost %d, balance lost %d", fixLoss, balLoss)
	}
}
