package strategies

import (
	"math/rand"

	"reqsched/internal/core"
)

// FirstFit is the simplest sensible baseline: each arrival is assigned
// immediately to its first free slot (alternatives in listed order, earliest
// round first) and never rescheduled. It is a maximal-matching strategy like
// A_fix but without the "maximum over the new requests" guarantee, so it is
// strictly weaker; benchmarks use it as the floor.
type FirstFit struct{}

// NewFirstFit returns the first-fit baseline.
func NewFirstFit() *FirstFit { return &FirstFit{} }

// Name implements core.Strategy.
func (*FirstFit) Name() string { return "first_fit" }

// Begin implements core.Strategy.
func (*FirstFit) Begin(n, d int) {}

// Round implements core.Strategy.
func (*FirstFit) Round(ctx *core.RoundContext) {
	for _, r := range ctx.Arrivals {
		if slots := ctx.W.FreeSlotsFor(r); len(slots) > 0 {
			ctx.W.Assign(r, slots[0].Res, slots[0].Round)
		}
	}
}

// RandomFit assigns each arrival to a uniformly random free slot in its
// window, never rescheduling. Seeded and deterministic per run; used in the
// tie-breaking ablation to show how much of each adversarial lower bound
// depends on the adversary predicting the implementation's choices.
type RandomFit struct {
	seed int64
	rng  *rand.Rand
}

// NewRandomFit returns a random-fit baseline with the given seed.
func NewRandomFit(seed int64) *RandomFit { return &RandomFit{seed: seed} }

// Name implements core.Strategy.
func (*RandomFit) Name() string { return "random_fit" }

// Begin implements core.Strategy.
func (s *RandomFit) Begin(n, d int) { s.rng = rand.New(rand.NewSource(s.seed)) }

// Round implements core.Strategy.
func (s *RandomFit) Round(ctx *core.RoundContext) {
	for _, r := range ctx.Arrivals {
		if slots := ctx.W.FreeSlotsFor(r); len(slots) > 0 {
			pick := slots[s.rng.Intn(len(slots))]
			ctx.W.Assign(r, pick.Res, pick.Round)
		}
	}
}
