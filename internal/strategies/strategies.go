// Package strategies implements the paper's global online scheduling
// strategies (Section 1.3): A_fix, A_current, A_fix_balance, A_eager,
// A_balance, the EDF reference strategies of Observations 3.1/3.2, and two
// trivial baselines.
//
// The paper defines each strategy as a *class* of algorithms ("choose any
// maximal/maximum matching such that ..."); its lower bounds are existential
// ("can be implemented in a way that ..."). This package pins one
// deterministic member of each class: requests are processed in ID (arrival)
// order, alternatives in their listed order, slots in ascending round order,
// and the matching subroutines of internal/matching inherit those orders. The
// adversarial constructions of internal/adversary choose arrival order and
// alternative listing so that this fixed implementation realizes exactly the
// executions the lower-bound proofs describe, while the upper bounds of
// Section 3 hold for every member of the class — and are property-tested
// against this one.
package strategies

import "reqsched/internal/core"

// New returns a fresh instance of every strategy in the package, keyed by
// name. Tests and the CLI tools iterate over this set.
func New() map[string]core.Strategy {
	list := []core.Strategy{
		NewFix(),
		NewCurrent(),
		NewFixBalance(),
		NewEager(),
		NewBalance(),
		NewEDF(),
		NewEDFCoordinated(),
		NewFirstFit(),
	}
	m := make(map[string]core.Strategy, len(list))
	for _, s := range list {
		m[s.Name()] = s
	}
	return m
}

// Global returns fresh instances of the five global strategies of Table 1,
// in the table's row order.
func Global() []core.Strategy {
	return []core.Strategy{
		NewFix(),
		NewCurrent(),
		NewFixBalance(),
		NewEager(),
		NewBalance(),
	}
}
