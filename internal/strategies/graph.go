package strategies

import (
	"reqsched/internal/core"
	"reqsched/internal/matching"
)

// winGraph is a bipartite graph between a set of live requests and the slots
// of the current window, with the shared slot indexing
// ((round - t) * n + resource) * cap + unit. Under the unit model (cap=1)
// this is the legacy (round - t) * n + resource indexing exactly. Capacities
// above 1 expand each (resource, round) slot into cap interchangeable unit
// vertices — sound at hold=1, where the slots of one round are independent;
// the matching strategies' SupportsModel gates longer holds out.
type winGraph struct {
	g     *matching.Graph
	reqs  []*core.Request
	n     int
	capc  int // capacity units per (resource, round) slot
	t     int // current round
	depth int
}

// slotIdx maps (resource, absolute round) to the right-vertex index of its
// first capacity unit; units u of the slot follow at slotIdx + u.
func (wg *winGraph) slotIdx(res, round int) int {
	return ((round-wg.t)*wg.n + res) * wg.capc
}

// slotOf inverts slotIdx, dropping the (interchangeable) unit.
func (wg *winGraph) slotOf(idx int) (res, round int) {
	return (idx / wg.capc) % wg.n, wg.t + idx/(wg.n*wg.capc)
}

// slots returns the number of right vertices of a window graph over w.
func slots(w *core.Window) int { return w.Depth() * w.N() * w.Model().Cap }

// buildGraph constructs the window graph for the given requests. If onlyFree
// is true, slots currently assigned in w are omitted (the A_fix family, which
// never reschedules, matches new requests into the free slots only); if
// false, all window slots are vertices (the A_eager family recomputes from
// scratch after snapshotting). Edges follow the deterministic preference
// order: per request, alternatives as listed, rounds ascending, clipped to
// the request's deadline.
func buildGraph(w *core.Window, reqs []*core.Request, onlyFree bool) *winGraph {
	wg := &winGraph{g: matching.NewGraph(len(reqs), slots(w))}
	wg.fill(w, reqs, onlyFree)
	return wg
}

// fill (re)populates wg for the given window and requests; wg.g must already
// be dimensioned len(reqs) x depth*n.
func (wg *winGraph) fill(w *core.Window, reqs []*core.Request, onlyFree bool) {
	wg.reqs = reqs
	wg.n = w.N()
	wg.capc = w.Model().Cap
	wg.t = w.Round()
	wg.depth = w.Depth()
	for li, r := range reqs {
		last := r.Deadline()
		if max := wg.t + wg.depth - 1; last > max {
			last = max
		}
		for _, a := range r.Alts {
			for round := wg.t; round <= last; round++ {
				base := wg.slotIdx(a, round)
				if onlyFree {
					if !w.Free(a, round) {
						continue
					}
					// Only the slot's free units are vertices; the first
					// AssignedCount units stand for the existing assignments.
					for u := w.AssignedCount(a, round); u < wg.capc; u++ {
						wg.g.AddEdge(li, base+u)
					}
				} else {
					for u := 0; u < wg.capc; u++ {
						wg.g.AddEdge(li, base+u)
					}
				}
			}
		}
	}
}

// roundScratch is the per-strategy buffer set the global strategies carry
// across rounds: the window graph, the working and cover matchings, the
// weight-class vector, the identity order, request and snapshot buffers, and
// the matching-solver scratch. Everything is allocated on first use and
// reused afterwards, so each strategy's steady-state round does no graph or
// matching allocation. A roundScratch belongs to exactly one strategy
// instance; strategy instances are therefore not safe for concurrent use
// (the measurement harness already builds one instance per goroutine).
type roundScratch struct {
	wg      winGraph
	m       matching.Matching
	cover   matching.Matching
	ms      matching.Scratch
	classOf []int32
	index   map[int]int
	order   []int
	reqs    []*core.Request
	snap    []core.Assignment
}

// buildGraph is buildGraph filling the scratch-owned graph in place.
func (sc *roundScratch) buildGraph(w *core.Window, reqs []*core.Request, onlyFree bool) *winGraph {
	if sc.wg.g == nil {
		sc.wg.g = matching.NewGraph(len(reqs), slots(w))
	} else {
		sc.wg.g.Reset(len(reqs), slots(w))
	}
	sc.wg.fill(w, reqs, onlyFree)
	return &sc.wg
}

// emptyMatching returns the scratch working matching, reset to the
// dimensions of the scratch graph.
func (sc *roundScratch) emptyMatching() *matching.Matching {
	sc.m.Reset(sc.wg.g.NLeft(), sc.wg.g.NRight())
	return &sc.m
}

// roundClasses is winGraph.roundClasses writing into the scratch buffer.
func (sc *roundScratch) roundClasses(maxClass int) []int32 {
	stride := sc.wg.n * sc.wg.capc
	n := sc.wg.depth * stride
	if cap(sc.classOf) >= n {
		sc.classOf = sc.classOf[:n]
	} else {
		sc.classOf = make([]int32, n)
	}
	for idx := range sc.classOf {
		c := idx / stride
		if c >= maxClass {
			c = maxClass - 1
		}
		sc.classOf[idx] = int32(c)
	}
	return sc.classOf
}

// coverMatching is winGraph.coverMatching reusing the scratch cover matching
// and request-index map.
func (sc *roundScratch) coverMatching(snapshot []core.Assignment) *matching.Matching {
	if sc.index == nil {
		sc.index = make(map[int]int, len(sc.wg.reqs))
	} else {
		clear(sc.index)
	}
	for li, r := range sc.wg.reqs {
		sc.index[r.ID] = li
	}
	sc.cover.Reset(sc.wg.g.NLeft(), sc.wg.g.NRight())
	// Snapshot order is deterministic ascending (round, resource), so
	// assignments sharing a slot take its units 0, 1, ... in snapshot order.
	prev, unit := [2]int{-1, -1}, 0
	for _, a := range snapshot {
		if key := [2]int{a.Res, a.Round}; key != prev {
			prev, unit = key, 0
		}
		if li, ok := sc.index[a.Req.ID]; ok {
			sc.cover.Match(li, sc.wg.slotIdx(a.Res, a.Round)+unit)
		}
		unit++
	}
	return &sc.cover
}

// identOrder returns the scratch identity permutation 0..n-1.
func (sc *roundScratch) identOrder(n int) []int {
	if cap(sc.order) >= n {
		sc.order = sc.order[:n]
	} else {
		sc.order = make([]int, n)
	}
	for i := range sc.order {
		sc.order[i] = i
	}
	return sc.order
}

// roundClasses returns the weight-class vector used by the balance
// strategies: slot class = rounds-from-now, so class 0 (the current round) is
// the most preferred. maxClass caps the classes (A_eager uses 2: "now" vs
// "later").
func (wg *winGraph) roundClasses(maxClass int) []int32 {
	stride := wg.n * wg.capc
	classOf := make([]int32, wg.depth*stride)
	for idx := range classOf {
		c := idx / stride
		if c >= maxClass {
			c = maxClass - 1
		}
		classOf[idx] = int32(c)
	}
	return classOf
}

// coverMatching converts a window snapshot into a matching of wg (the
// inherited schedule), for use with matching.CoverLeft. Requests in the
// snapshot that are not in reqs (already served) are skipped.
func (wg *winGraph) coverMatching(snapshot []core.Assignment) *matching.Matching {
	index := make(map[int]int, len(wg.reqs))
	for li, r := range wg.reqs {
		index[r.ID] = li
	}
	m := matching.NewMatching(wg.g.NLeft(), wg.g.NRight())
	prev, unit := [2]int{-1, -1}, 0
	for _, a := range snapshot {
		if key := [2]int{a.Res, a.Round}; key != prev {
			prev, unit = key, 0
		}
		if li, ok := index[a.Req.ID]; ok {
			m.Match(li, wg.slotIdx(a.Res, a.Round)+unit)
		}
		unit++
	}
	return m
}

// newCurrentGraph returns an empty graph sized like a window graph; used by
// A_current, which only adds current-round edges.
func newCurrentGraph(nLeft, nRight int) *matching.Graph {
	return matching.NewGraph(nLeft, nRight)
}

// newEmptyMatching returns an empty matching sized for wg.
func newEmptyMatching(wg *winGraph) *matching.Matching {
	return matching.NewMatching(wg.g.NLeft(), wg.g.NRight())
}

// extendFromLeft augments m from the listed left vertices in order.
func extendFromLeft(wg *winGraph, m *matching.Matching, order []int) int {
	return matching.ExtendFromLeft(wg.g, m, order)
}

// lexMax computes the weight-class greedy maximum matching of wg.
func lexMax(wg *winGraph, classOf []int32) *matching.Matching {
	return matching.LexMax(wg.g, classOf)
}

// apply writes matched pairs into the window. Requests already assigned in w
// are skipped (the A_fix family extends in place); the A_eager family resets
// the window first so everything is applied.
func (wg *winGraph) apply(w *core.Window, m *matching.Matching) {
	for li, ridx := range m.L2R {
		if ridx == matching.None {
			continue
		}
		r := wg.reqs[li]
		if w.Assigned(r) {
			continue
		}
		res, round := wg.slotOf(int(ridx))
		w.Assign(r, res, round)
	}
}
