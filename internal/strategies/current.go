package strategies

import "reqsched/internal/core"

// Current implements A_current: every round, a maximum matching is computed
// between all live unfulfilled requests and the n time slots of the *current*
// round only — no forward planning at all. Pending requests keep competing
// every round until served or expired. Competitive ratio between e/(e-1)
// (as d grows, Theorem 2.2) and 2 - 1/d (Theorem 3.3).
type Current struct {
	sc roundScratch
}

// NewCurrent returns the A_current strategy.
func NewCurrent() *Current { return &Current{} }

// Name implements core.Strategy.
func (*Current) Name() string { return "A_current" }

// Begin implements core.Strategy.
func (*Current) Begin(n, d int) {}

// Round implements core.Strategy.
func (s *Current) Round(ctx *core.RoundContext) {
	routeCurrent(ctx, ctx.Pending, &s.sc)
}

// routeCurrent is the A_current round body over an arbitrary queue: the
// composable router form. A_current never pre-assigns, so every queued
// request is unassigned.
func routeCurrent(ctx *core.RoundContext, queue []*core.Request, sc *roundScratch) {
	wg := buildCurrentRoundGraph(sc, ctx.W, queue)
	m := sc.emptyMatching()
	order := sc.identOrder(len(queue))
	// Maximum matching with requests considered in queue order — ID order in
	// the fused strategy, so older requests (lower IDs) are matched first:
	// the implementation the Theorem 2.2 adversary steers group by group.
	sc.ms.ExtendFromLeft(wg.g, m, order)
	wg.apply(ctx.W, m)
}

// buildCurrentRoundGraph restricts the window graph to the current round's n
// slots: request li is adjacent to slot (alt, t) for each listed alternative.
// The graph is the scratch-owned one, reused across rounds.
func buildCurrentRoundGraph(sc *roundScratch, w *core.Window, reqs []*core.Request) *winGraph {
	wg := &sc.wg
	wg.reqs = reqs
	wg.n = w.N()
	wg.capc = w.Model().Cap
	wg.t = w.Round()
	wg.depth = w.Depth()
	if wg.g == nil {
		wg.g = newCurrentGraph(len(reqs), slots(w))
	} else {
		wg.g.Reset(len(reqs), slots(w))
	}
	for li, r := range reqs {
		for _, a := range r.Alts {
			if w.Free(a, wg.t) {
				base := wg.slotIdx(a, wg.t)
				for u := w.AssignedCount(a, wg.t); u < wg.capc; u++ {
					wg.g.AddEdge(li, base+u)
				}
			}
		}
	}
	return wg
}
