package strategies

import (
	"sort"

	"reqsched/internal/core"
	"reqsched/internal/matching"
)

// Weighted extension: requests carry weights (priority classes) and the
// objective becomes maximizing the total weight served. The paper's model is
// unweighted; these strategies are the natural weighted analogues of A_fix
// and A_eager, measured against the offline maximum profit
// (offline.MaxProfit).

// FixWeighted is A_fix with weight-aware admission: each round the new
// arrivals are considered heaviest-first (ties by ID) and matched into free
// slots with augmentation, never to be rescheduled. With uniform weights it
// coincides with a member of the A_fix class.
type FixWeighted struct{}

// NewFixWeighted returns the weighted A_fix variant.
func NewFixWeighted() *FixWeighted { return &FixWeighted{} }

// Name implements core.Strategy.
func (*FixWeighted) Name() string { return "A_fix_w" }

// Begin implements core.Strategy.
func (*FixWeighted) Begin(n, d int) {}

// Round implements core.Strategy.
func (*FixWeighted) Round(ctx *core.RoundContext) {
	reqs := append([]*core.Request(nil), ctx.Arrivals...)
	sort.SliceStable(reqs, func(a, b int) bool {
		if reqs[a].Weight() != reqs[b].Weight() {
			return reqs[a].Weight() > reqs[b].Weight()
		}
		return reqs[a].ID < reqs[b].ID
	})
	wg := buildGraph(ctx.W, reqs, true)
	m := newEmptyMatching(wg)
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	extendFromLeft(wg, m, order)
	wg.apply(ctx.W, m)
}

// EagerWeighted recomputes, every round, the matching of maximum total
// weight over the whole known window (matching.MaxProfitMatching). Unlike
// A_eager it may *unschedule* a lighter request when a heavier one arrives —
// commitment is traded for profit. With uniform weights the per-round
// matching is maximum cardinality, so it behaves like an (unconstrained)
// member of the A_eager class.
type EagerWeighted struct{}

// NewEagerWeighted returns the weighted rescheduling strategy.
func NewEagerWeighted() *EagerWeighted { return &EagerWeighted{} }

// Name implements core.Strategy.
func (*EagerWeighted) Name() string { return "A_eager_w" }

// Begin implements core.Strategy.
func (*EagerWeighted) Begin(n, d int) {}

// Round implements core.Strategy.
func (*EagerWeighted) Round(ctx *core.RoundContext) {
	reqs := ctx.Pending
	ctx.W.Reset()
	wg := buildGraph(ctx.W, reqs, false)
	profit := make([]int64, len(reqs))
	for i, r := range reqs {
		profit[i] = int64(r.Weight())
	}
	m := matching.MaxProfitMatching(wg.g, profit)
	wg.apply(ctx.W, m)
}
