// Command schedsim simulates strategies on synthetic workloads; see
// app.SchedsimMain.
package main

import (
	"os"

	"reqsched/internal/app"
)

func main() { os.Exit(app.SchedsimMain(os.Args[1:], os.Stdout, os.Stderr)) }
