// Command schedsim runs one or all strategies over a synthetic workload and
// reports throughput, loss, latency, per-resource balance, communication
// cost, and the empirical competitive ratio against the offline optimum.
//
// Usage examples:
//
//	schedsim -workload uniform -n 8 -d 4 -rounds 200 -rate 9
//	schedsim -workload video -items 100 -zipf 1.2 -strategy A_balance
//	schedsim -workload bursty -on 5 -off 10 -burst 25 -all
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"reqsched"
	"reqsched/internal/experiment"
)

func main() {
	var (
		wl       = flag.String("workload", "uniform", "uniform | zipf | bursty | video | single | cchoice")
		n        = flag.Int("n", 8, "resources")
		d        = flag.Int("d", 4, "deadline window")
		rounds   = flag.Int("rounds", 200, "rounds with arrivals")
		rate     = flag.Float64("rate", 0, "mean arrivals/round (default n)")
		seed     = flag.Int64("seed", 1, "random seed")
		zipfS    = flag.Float64("zipf", 1.4, "zipf exponent (zipf/video)")
		items    = flag.Int("items", 100, "catalog size (video)")
		on       = flag.Int("on", 5, "burst length (bursty)")
		off      = flag.Int("off", 10, "quiet length (bursty)")
		burst    = flag.Float64("burst", 0, "burst arrivals/round (default 3n)")
		choices  = flag.Int("c", 3, "alternatives per request (cchoice)")
		strategy = flag.String("strategy", "", "run a single strategy by name")
		all      = flag.Bool("all", false, "run every strategy (default when -strategy empty)")
		series   = flag.Bool("series", false, "emit per-round CSV for the selected strategy instead of the summary")
		seeds    = flag.Int("seeds", 1, "aggregate over this many seeds (mean±std instead of one run)")
		config   = flag.String("config", "", "run a declarative JSON experiment suite instead of flags")
		workers  = flag.Int("workers", 0, "worker pool for multi-seed runs and the offline optimum (<= 0: GOMAXPROCS)")
	)
	flag.Parse()

	if *config != "" {
		f, err := os.Open(*config)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		suite, err := experiment.Load(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *workers != 0 {
			suite.Workers = *workers
		}
		rep, err := suite.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(rep.Format())
		return
	}
	if *rate == 0 {
		*rate = float64(*n)
	}
	if *burst == 0 {
		*burst = 3 * float64(*n)
	}

	gen := func(seed int64) *reqsched.Trace {
		cfg := reqsched.WorkloadConfig{N: *n, D: *d, Rounds: *rounds, Rate: *rate, Seed: seed}
		switch *wl {
		case "uniform":
			return reqsched.Uniform(cfg)
		case "zipf":
			return reqsched.Zipf(cfg, *zipfS)
		case "bursty":
			return reqsched.Bursty(cfg, *on, *off, *burst)
		case "video":
			return reqsched.VideoServer(cfg, *items, *zipfS)
		case "single":
			return reqsched.SingleChoice(cfg)
		case "cchoice":
			return reqsched.CChoice(cfg, *choices)
		}
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
		return nil
	}
	tr := gen(*seed)

	if *seeds > 1 {
		fmt.Printf("workload %s aggregated over %d seeds\n\n", *wl, *seeds)
		names := strategyNames(*strategy, *all)
		for _, name := range names {
			name := name
			sum, err := reqsched.SummarizeParallel(
				func() reqsched.Strategy { return reqsched.StrategyByName(name) },
				gen, *seeds, *workers)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(sum)
		}
		return
	}

	if *series {
		name := *strategy
		if name == "" {
			name = "A_balance"
		}
		s := reqsched.StrategyByName(name)
		if s == nil {
			fmt.Fprintf(os.Stderr, "unknown strategy %q\n", name)
			os.Exit(2)
		}
		_, sr := reqsched.RunWithSeries(s, tr)
		fmt.Println("round,arrived,served,expired,pending,backlog,idle")
		for _, r := range sr.Rounds {
			fmt.Printf("%d,%d,%d,%d,%d,%d,%d\n",
				r.T, r.Arrived, r.Served, r.Expired, r.Pending, r.Backlog, r.Idle)
		}
		return
	}

	fmt.Printf("workload %s: %s\n", *wl, reqsched.SummarizeTrace(tr))
	opt := reqsched.OptimumParallel(tr, *workers)
	fmt.Printf("offline optimum: %d of %d requests (%d segments)\n\n",
		opt, tr.NumRequests(), reqsched.TraceSegmentCount(tr))

	names := strategyNames(*strategy, *all)

	fmt.Printf("%-20s %9s %7s %9s %9s %9s %10s %9s\n",
		"strategy", "served", "lost", "ratio", "latency", "balance", "commRound", "messages")
	for _, name := range names {
		s := reqsched.StrategyByName(name)
		if s == nil {
			fmt.Fprintf(os.Stderr, "unknown strategy %q\n", name)
			os.Exit(2)
		}
		res := reqsched.Run(s, tr)
		fmt.Printf("%-20s %9d %7d %9s %9.2f %9.3f %10d %9d\n",
			name, res.Fulfilled, res.Expired,
			reqsched.FormatRatio(ratioOf(opt, res.Fulfilled), 4), res.MeanLatency(),
			imbalance(res.PerResource), res.CommRounds, res.Messages)
	}
}

// strategyNames resolves the -strategy/-all flags into a sorted name list.
func strategyNames(strategy string, all bool) []string {
	if strategy != "" && !all {
		return []string{strategy}
	}
	var names []string
	for name := range reqsched.Strategies() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ratioOf is OPT/ALG: 1 when both served nothing, +Inf when only the
// strategy starved (OPT served something, ALG nothing).
func ratioOf(opt, alg int) float64 {
	if alg == 0 {
		if opt == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(opt) / float64(alg)
}

// imbalance is max/mean of the per-resource service counts (1.0 = perfectly
// balanced).
func imbalance(per []int) float64 {
	total, max := 0, 0
	for _, c := range per {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(per))
	return float64(max) / mean
}
