// Command verify runs the reproduction's headline checks in one shot; see
// app.VerifyMain.
package main

import (
	"os"

	"reqsched/internal/app"
)

func main() { os.Exit(app.VerifyMain(os.Args[1:], os.Stdout, os.Stderr)) }
