// Command verify runs the reproduction's headline checks in one shot — a
// CI-style gate. It measures every Table 1 row's adversary in parallel,
// checks proven bounds on both sides, re-validates the structural
// augmenting-path claims of the upper-bound proofs, and exits non-zero on
// any violation.
package main

import (
	"fmt"
	"os"

	"reqsched"
)

type check struct {
	name string
	ok   bool
	info string
}

func main() {
	var checks []check
	add := func(name string, ok bool, format string, args ...interface{}) {
		checks = append(checks, check{name, ok, fmt.Sprintf(format, args...)})
	}

	// 1. Every Table 1 row: measured within (LB - tolerance, UB].
	type row struct {
		name     string
		build    func() reqsched.Construction
		strategy func() reqsched.Strategy
		lb, ub   float64
	}
	rows := []row{
		{"A_fix d=4", func() reqsched.Construction { return reqsched.AdversaryFix(4, 120) },
			reqsched.NewAFix, 1.75, 1.75},
		{"A_current d=2", func() reqsched.Construction { return reqsched.AdversaryEager(2, 120) },
			reqsched.NewACurrent, 4.0 / 3, 1.5},
		{"A_current l=5", func() reqsched.Construction { return reqsched.AdversaryCurrent(5, 5) },
			reqsched.NewACurrent, reqsched.AdversaryCurrentBound(5), 2 - 1.0/60},
		{"A_fix_balance d=8", func() reqsched.Construction { return reqsched.AdversaryFixBalance(8, 120) },
			reqsched.NewAFixBalance, 24.0 / 18, 1.75},
		{"A_eager d=4", func() reqsched.Construction { return reqsched.AdversaryEager(4, 120) },
			reqsched.NewAEager, 4.0 / 3, 10.0 / 7},
		{"A_balance x=2 k=64", func() reqsched.Construction { return reqsched.AdversaryBalance(2, 64, 60) },
			reqsched.NewABalance, 27.0 / 21, 24.0 / 17},
		{"universal vs A_balance", func() reqsched.Construction { return reqsched.AdversaryUniversal(6, 40) },
			reqsched.NewABalance, 45.0 / 41, 30.0 / 21},
		{"A_local_fix d=4", func() reqsched.Construction { return reqsched.AdversaryLocalFix(4, 120) },
			reqsched.NewALocalFix, 2, 2},
		{"EDF worst d=4", func() reqsched.Construction { return reqsched.AdversaryEDF(4, 120) },
			reqsched.NewEDF, 2, 2},
	}
	jobs := make([]reqsched.MeasureJob, len(rows))
	for i, r := range rows {
		jobs[i] = reqsched.MeasureJob{Name: r.name, Build: r.build, Strategy: r.strategy}
	}
	results := reqsched.MeasureParallel(jobs, 0)
	for i, m := range results {
		r := rows[i]
		got := m.Ratio()
		ok := got <= r.ub+1e-9 && got >= r.lb-0.02
		add("bounds: "+r.name, ok, "measured %.4f, proven LB %.4f, UB %.4f", got, r.lb, r.ub)
	}

	// 2. Structural proof claims on a stress workload.
	tr := reqsched.Uniform(reqsched.WorkloadConfig{N: 6, D: 4, Rounds: 60, Rate: 10, Seed: 99})
	opt := reqsched.Optimum(tr)
	for name, s := range reqsched.Strategies() {
		res := reqsched.Run(s, tr)
		err := reqsched.ValidateLog(tr, res.Log)
		add("valid schedule: "+name, err == nil && res.Fulfilled <= opt,
			"served %d of %d (OPT %d), err=%v", res.Fulfilled, tr.NumRequests(), opt, err)
	}

	// 3. Observation 3.1: EDF optimal for single-choice.
	single := reqsched.SingleChoice(reqsched.WorkloadConfig{N: 4, D: 4, Rounds: 50, Rate: 6, Seed: 5})
	edf := reqsched.Run(reqsched.NewEDF(), single)
	add("EDF single-choice optimal", edf.Fulfilled == reqsched.Optimum(single),
		"EDF %d vs OPT %d", edf.Fulfilled, reqsched.Optimum(single))

	// Report.
	failures := 0
	for _, c := range checks {
		status := "PASS"
		if !c.ok {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%-4s %-38s %s\n", status, c.name, c.info)
	}
	fmt.Printf("\n%d checks, %d failures\n", len(checks), failures)
	if failures > 0 {
		os.Exit(1)
	}
}
