// Command verify runs the reproduction's headline checks in one shot — a
// CI-style gate. It measures every Table 1 row's adversary in parallel,
// checks proven bounds on both sides, re-validates the structural
// augmenting-path claims of the upper-bound proofs, cross-checks the
// segmented parallel offline optimum against the monolithic solver, and
// exits non-zero on any violation. With -tools it additionally shells out to
// `go vet ./...` and the race-detector tests of the concurrent packages.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"sort"
	"strings"

	"reqsched"
)

type check struct {
	name string
	ok   bool
	info string
}

func main() {
	workers := flag.Int("workers", 0, "measurement pool size (<= 0: GOMAXPROCS)")
	tools := flag.Bool("tools", false, "also run `go vet ./...` and `go test -race` on the concurrent packages")
	flag.Parse()

	var checks []check
	add := func(name string, ok bool, format string, args ...interface{}) {
		checks = append(checks, check{name, ok, fmt.Sprintf(format, args...)})
	}

	// 1. Every Table 1 row: measured within (LB - tolerance, UB].
	type row struct {
		name     string
		build    func() reqsched.Construction
		strategy func() reqsched.Strategy
		lb, ub   float64
	}
	rows := []row{
		{"A_fix d=4", func() reqsched.Construction { return reqsched.AdversaryFix(4, 120) },
			reqsched.NewAFix, 1.75, 1.75},
		{"A_current d=2", func() reqsched.Construction { return reqsched.AdversaryEager(2, 120) },
			reqsched.NewACurrent, 4.0 / 3, 1.5},
		{"A_current l=5", func() reqsched.Construction { return reqsched.AdversaryCurrent(5, 5) },
			reqsched.NewACurrent, reqsched.AdversaryCurrentBound(5), 2 - 1.0/60},
		{"A_fix_balance d=8", func() reqsched.Construction { return reqsched.AdversaryFixBalance(8, 120) },
			reqsched.NewAFixBalance, 24.0 / 18, 1.75},
		{"A_eager d=4", func() reqsched.Construction { return reqsched.AdversaryEager(4, 120) },
			reqsched.NewAEager, 4.0 / 3, 10.0 / 7},
		{"A_balance x=2 k=64", func() reqsched.Construction { return reqsched.AdversaryBalance(2, 64, 60) },
			reqsched.NewABalance, 27.0 / 21, 24.0 / 17},
		{"universal vs A_balance", func() reqsched.Construction { return reqsched.AdversaryUniversal(6, 40) },
			reqsched.NewABalance, 45.0 / 41, 30.0 / 21},
		{"A_local_fix d=4", func() reqsched.Construction { return reqsched.AdversaryLocalFix(4, 120) },
			reqsched.NewALocalFix, 2, 2},
		{"EDF worst d=4", func() reqsched.Construction { return reqsched.AdversaryEDF(4, 120) },
			reqsched.NewEDF, 2, 2},
	}
	jobs := make([]reqsched.MeasureJob, len(rows))
	for i, r := range rows {
		jobs[i] = reqsched.MeasureJob{Name: r.name, Build: r.build, Strategy: r.strategy}
	}
	results := reqsched.MeasureParallel(jobs, *workers)
	for i, m := range results {
		r := rows[i]
		got := m.Ratio()
		ok := got <= r.ub+1e-9 && got >= r.lb-0.02
		add("bounds: "+r.name, ok, "measured %.4f, proven LB %.4f, UB %.4f", got, r.lb, r.ub)
	}

	// 2. Structural proof claims on a stress workload, in name order so the
	// report is byte-identical across runs.
	tr := reqsched.Uniform(reqsched.WorkloadConfig{N: 6, D: 4, Rounds: 60, Rate: 10, Seed: 99})
	opt := reqsched.Optimum(tr)
	strategies := reqsched.Strategies()
	names := make([]string, 0, len(strategies))
	for name := range strategies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res := reqsched.Run(strategies[name], tr)
		err := reqsched.ValidateLog(tr, res.Log)
		add("valid schedule: "+name, err == nil && res.Fulfilled <= opt,
			"served %d of %d (OPT %d), err=%v", res.Fulfilled, tr.NumRequests(), opt, err)
	}

	// 3. Observation 3.1: EDF optimal for single-choice.
	single := reqsched.SingleChoice(reqsched.WorkloadConfig{N: 4, D: 4, Rounds: 50, Rate: 6, Seed: 5})
	edf := reqsched.Run(reqsched.NewEDF(), single)
	add("EDF single-choice optimal", edf.Fulfilled == reqsched.Optimum(single),
		"EDF %d vs OPT %d", edf.Fulfilled, reqsched.Optimum(single))

	// 4. Segmented parallel OPT agrees with the monolithic solver on every
	// oblivious Table 1 adversary trace and a batch of random workloads.
	// (Adaptive constructions have no fixed trace; the offline package's
	// property tests cover their materialized runs.)
	for _, r := range rows {
		tr := r.build().Trace
		if tr == nil {
			continue
		}
		want := reqsched.Optimum(tr)
		got := reqsched.OptimumParallel(tr, *workers)
		add("segmented OPT: "+r.name, got == want,
			"parallel %d vs monolithic %d (%d segments)", got, want, reqsched.TraceSegmentCount(tr))
	}
	rng := rand.New(rand.NewSource(424242))
	mismatches, trials := 0, 40
	for i := 0; i < trials; i++ {
		cfg := reqsched.WorkloadConfig{
			N: 2 + rng.Intn(8), D: 1 + rng.Intn(5), Rounds: 20 + rng.Intn(60),
			Rate: rng.Float64() * 12, Seed: rng.Int63(),
		}
		var tr *reqsched.Trace
		if i%2 == 0 {
			tr = reqsched.Uniform(cfg)
		} else {
			r := cfg.Rate
			cfg.Rate = 0
			tr = reqsched.Bursty(cfg, 3, 2+rng.Intn(6), r)
		}
		if reqsched.OptimumParallel(tr, *workers) != reqsched.Optimum(tr) {
			mismatches++
		}
	}
	add("segmented OPT: random traces", mismatches == 0,
		"%d/%d random workloads mismatched", mismatches, trials)

	// 4b. The weighted segmented solvers agree with their monolithic
	// counterparts: identical max profit and identical minimum latency on
	// weighted variants of the oblivious adversary traces and a batch of
	// random weighted workloads. The monolithic weighted solvers are
	// superquadratic, so the largest row trace (A_balance k=64, ~35k
	// requests) is skipped here; the offline package's property tests and
	// cmd/bench cover the weighted solvers at scale.
	for _, r := range rows {
		tr := r.build().Trace
		if tr == nil || tr.NumRequests() > 5000 {
			continue
		}
		wtr := reqsched.WithWeights(tr, 8, 77)
		wantP := reqsched.MaxProfit(wtr)
		gotP := reqsched.MaxProfitParallel(wtr, *workers)
		add("segmented profit: "+r.name, gotP == wantP,
			"parallel %d vs monolithic %d", gotP, wantP)
		_, wantL := reqsched.OptimumMinLatency(wtr)
		logP, gotL := reqsched.OptimumMinLatencyParallel(wtr, *workers)
		add("segmented min latency: "+r.name,
			gotL == wantL && reqsched.ValidateLog(wtr, logP) == nil,
			"parallel %d vs monolithic %d (schedule of %d valid=%v)",
			gotL, wantL, len(logP), reqsched.ValidateLog(wtr, logP) == nil)
	}
	wMismatches, wTrials := 0, 25
	for i := 0; i < wTrials; i++ {
		cfg := reqsched.WorkloadConfig{
			N: 2 + rng.Intn(6), D: 1 + rng.Intn(4), Rounds: 15 + rng.Intn(40),
			Rate: rng.Float64() * 8, Seed: rng.Int63(),
		}
		var tr *reqsched.Trace
		if i%2 == 0 {
			tr = reqsched.Uniform(cfg)
		} else {
			r := cfg.Rate
			cfg.Rate = 0
			tr = reqsched.Bursty(cfg, 3, 2+rng.Intn(5), r)
		}
		wtr := reqsched.WithWeights(tr, 1+rng.Intn(9), rng.Int63())
		_, wantL := reqsched.OptimumMinLatency(wtr)
		_, gotL := reqsched.OptimumMinLatencyParallel(wtr, *workers)
		if reqsched.MaxProfitParallel(wtr, *workers) != reqsched.MaxProfit(wtr) || gotL != wantL {
			wMismatches++
		}
	}
	add("segmented weighted: random traces", wMismatches == 0,
		"%d/%d random weighted workloads mismatched", wMismatches, wTrials)

	// 4c. The streamed adaptive pipeline reproduces the materialized adaptive
	// measurement on the Theorem 2.6 adversary.
	wantAd := reqsched.MeasureConstruction(reqsched.AdversaryUniversal(6, 40), reqsched.NewABalance())
	gotAd, nsegs := reqsched.MeasureAdaptiveStream(reqsched.NewABalance(), reqsched.AdversaryUniversal(6, 40).Source, *workers)
	add("adaptive stream OPT", gotAd.OPT == wantAd.OPT && gotAd.ALG == wantAd.ALG,
		"stream OPT/ALG %d/%d vs post-hoc %d/%d (%d segments)",
		gotAd.OPT, gotAd.ALG, wantAd.OPT, wantAd.ALG, nsegs)

	// 5. Optional toolchain gates.
	if *tools {
		cmds := [][]string{
			{"go", "vet", "./..."},
			{"go", "test", "-race", "./internal/offline", "./internal/ratio", "./internal/experiment"},
		}
		for _, args := range cmds {
			cmd := exec.Command(args[0], args[1:]...)
			out, err := cmd.CombinedOutput()
			info := "ok"
			if err != nil {
				info = fmt.Sprintf("%v\n%s", err, out)
			}
			add("tool: "+strings.Join(args, " "), err == nil, "%s", info)
		}
	}

	// Report.
	failures := 0
	for _, c := range checks {
		status := "PASS"
		if !c.ok {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%-4s %-38s %s\n", status, c.name, c.info)
	}
	fmt.Printf("\n%d checks, %d failures\n", len(checks), failures)
	if failures > 0 {
		os.Exit(1)
	}
}
