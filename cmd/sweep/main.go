// Command sweep measures competitive-ratio grids; see app.SweepMain.
package main

import (
	"os"

	"reqsched/internal/app"
)

func main() { os.Exit(app.SweepMain(os.Args[1:], os.Stdout, os.Stderr)) }
