// Command sweep produces the derived data series of the reproduction
// (DESIGN.md Fig-A/Fig-B) as CSV:
//
//	-mode d     ratio of each strategy on its own adversary as d grows
//	            (the shape of the Table 1 bound formulas);
//	-mode l     A_current's ratio versus l, converging to e/(e-1);
//	-mode load  empirical ratio of every strategy on random load as the
//	            arrival rate sweeps past saturation.
//
// All modes run their measurements on a -workers sized pool; rows are printed
// in a fixed order regardless of the worker count.
//
// The grid is fault tolerant: -journal checkpoints every completed cell to
// an append-only JSONL file (crash-safe; a torn final line is detected and
// truncated), -resume continues an interrupted sweep bit-identically, and
// -shard N runs the cells on N gridworker subprocesses supervised with
// per-job deadlines, heartbeat liveness, retry backoff, and record
// re-verification — a worker that OOMs, hangs, or corrupts its output costs
// one retry, not the sweep. -shard 0 (the default) measures in-process;
// without -journal it is the plain worker-pool path of earlier versions and
// produces byte-identical CSV on every path.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"reqsched"
	"reqsched/internal/grid"
	"reqsched/internal/grid/chaos"
)

// printer renders measurements as CSV rows. done[i]==false rows (cells that
// failed after retries) are skipped — the failure report names them; nil
// done means every cell completed.
type printer func(ms []reqsched.Measurement, done []bool)

func main() {
	mode := flag.String("mode", "d", "d | l | load")
	phases := flag.Int("phases", 60, "adversary phases")
	workers := flag.Int("workers", 0, "measurement pool size (<= 0: GOMAXPROCS)")
	shard := flag.Int("shard", 0, "gridworker subprocesses (0: measure in-process)")
	journalPath := flag.String("journal", "", "checkpoint journal path (JSONL; enables crash-safe resume)")
	resume := flag.Bool("resume", false, "resume from an existing journal (requires -journal)")
	workerCmd := flag.String("worker-cmd", "", "gridworker command (default: re-exec this binary with -gridworker)")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "per-cell wall-clock deadline (sharded mode)")
	retries := flag.Int("retries", 3, "retry budget per cell before it is marked failed (sharded mode)")
	gridworker := flag.Bool("gridworker", false, "internal: speak the gridworker protocol on stdin/stdout")
	flag.Parse()

	if *gridworker {
		faults, err := chaos.FromEnv()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := grid.WorkerMain(os.Stdin, os.Stdout, 2*time.Second, faults); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var specs []grid.Spec
	var names []string
	var print printer
	switch *mode {
	case "d":
		specs, names, print = sweepD(*phases)
	case "l":
		specs, names, print = sweepL()
	case "load":
		specs, names, print = sweepLoad()
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	jobs, err := grid.BuildManifest(specs, names)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The plain path: in-process pool, no checkpoints — unchanged from
	// earlier versions.
	if *shard <= 0 && *journalPath == "" {
		if *resume {
			fmt.Fprintln(os.Stderr, "sweep: -resume requires -journal")
			os.Exit(2)
		}
		print(reqsched.MeasureParallel(grid.RatioJobs(jobs), *workers), nil)
		return
	}

	// Fault-tolerant paths: journal + optional subprocess sharding.
	var j *grid.Journal
	var done map[string]grid.Record
	if *journalPath != "" {
		var scan grid.JournalScan
		j, done, scan, err = grid.OpenJournal(*journalPath, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer j.Close()
		if scan.TornOffset >= 0 {
			fmt.Fprintf(os.Stderr, "sweep: journal had a torn final line at byte %d (crash mid-write); truncated and resuming\n", scan.TornOffset)
		}
		if scan.Skipped > 0 {
			fmt.Fprintf(os.Stderr, "sweep: journal had %d corrupt record(s); their cells will re-run\n", scan.Skipped)
		}
	} else if *resume {
		fmt.Fprintln(os.Stderr, "sweep: -resume requires -journal")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var rep *grid.Report
	if *shard <= 0 {
		rep, err = grid.RunLocal(ctx, jobs, done, j, *workers)
	} else {
		cmd := []string{*workerCmd}
		if *workerCmd == "" {
			self, eerr := os.Executable()
			if eerr != nil {
				fmt.Fprintln(os.Stderr, eerr)
				os.Exit(1)
			}
			cmd = []string{self, "-gridworker"}
		}
		var r int
		if r = *retries; r == 0 {
			r = -1 // flag 0 means "no retries"; Options 0 means "default"
		}
		rep, err = grid.Run(ctx, jobs, grid.Options{
			Workers:    *shard,
			WorkerCmd:  cmd,
			Journal:    j,
			Done:       done,
			JobTimeout: *jobTimeout,
			Retries:    r,
			Log:        os.Stderr,
		})
	}
	if ctx.Err() != nil {
		n := 0
		if rep != nil {
			for _, d := range rep.Done {
				if d {
					n++
				}
			}
		}
		fmt.Fprintf(os.Stderr, "sweep: interrupted; %d/%d cells checkpointed — rerun with -resume to continue\n", n, len(jobs))
		os.Exit(130)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if rep.FromJournal > 0 || rep.Retried > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d/%d cells from journal, %d retried\n", rep.FromJournal, len(jobs), rep.Retried)
	}
	print(rep.Measurements, rep.Done)
	if !rep.AllDone() {
		fmt.Fprint(os.Stderr, rep.FailureReport())
		os.Exit(1)
	}
}

func sweepD(phases int) ([]grid.Spec, []string, printer) {
	type point struct {
		name string
		d    int
	}
	type row struct {
		name  string
		build func(d int) grid.BuildSpec
		ds    []int
	}
	rows := []row{
		{"A_fix",
			func(d int) grid.BuildSpec { return grid.BuildSpec{Kind: "fix", D: d, Phases: phases} },
			[]int{2, 3, 4, 6, 8, 12, 16, 24}},
		{"A_fix_balance",
			func(d int) grid.BuildSpec { return grid.BuildSpec{Kind: "fix_balance", D: d, Phases: phases} },
			[]int{2, 4, 6, 8, 12, 16, 24}},
		{"A_eager",
			func(d int) grid.BuildSpec { return grid.BuildSpec{Kind: "eager", D: d, Phases: phases} },
			[]int{2, 4, 6, 8, 12, 16, 24}},
		{"A_balance",
			func(d int) grid.BuildSpec {
				return grid.BuildSpec{Kind: "balance", X: (d + 1) / 3, K: 32, Phases: phases}
			},
			[]int{2, 5, 8, 11, 14}},
		{"A_local_fix",
			func(d int) grid.BuildSpec { return grid.BuildSpec{Kind: "local_fix", D: d, Phases: phases} },
			[]int{1, 2, 4, 8, 16}},
	}
	var specs []grid.Spec
	var names []string
	var points []point
	for _, r := range rows {
		for _, d := range r.ds {
			specs = append(specs, grid.Spec{Strategy: r.name, Build: r.build(d)})
			names = append(names, fmt.Sprintf("%s/d=%d", r.name, d))
			points = append(points, point{r.name, d})
		}
	}
	print := func(ms []reqsched.Measurement, done []bool) {
		fmt.Println("strategy,d,opt,alg,measured,provenLB,provenUB")
		for i, m := range ms {
			if done != nil && !done[i] {
				continue
			}
			p := points[i]
			fmt.Printf("%s,%d,%d,%d,%s,%.6f,%s\n",
				p.name, p.d, m.OPT, m.ALG, reqsched.FormatRatio(m.Ratio(), 6), m.Bound, ub(p.name, p.d))
		}
	}
	return specs, names, print
}

func ub(name string, d int) string {
	s := reqsched.StrategyByName(name)
	if s == nil {
		return ""
	}
	// UpperBound formulas mirror Table 1; reuse the measurement bound field
	// by probing a tiny run is overkill — recompute directly.
	switch name {
	case "A_fix", "A_current", "A_local_fix":
		if name == "A_local_fix" {
			return "2.000000"
		}
		return fmt.Sprintf("%.6f", 2-1/float64(d))
	case "A_fix_balance":
		b := 4.0 / 3.0
		if v := 2 - 2/float64(d); v > b {
			b = v
		}
		if v := 2 - 3/(float64(d)+2); v > b {
			b = v
		}
		return fmt.Sprintf("%.6f", b)
	case "A_eager":
		return fmt.Sprintf("%.6f", (3*float64(d)-2)/(2*float64(d)-1))
	case "A_balance":
		if d == 2 {
			return fmt.Sprintf("%.6f", 4.0/3.0)
		}
		return fmt.Sprintf("%.6f", 6*(float64(d)-1)/(4*float64(d)-3))
	}
	return ""
}

func sweepL() ([]grid.Spec, []string, printer) {
	ls := []int{2, 3, 4, 5, 6, 7}
	var specs []grid.Spec
	var names []string
	for _, l := range ls {
		specs = append(specs, grid.Spec{
			Strategy: "A_current",
			Build:    grid.BuildSpec{Kind: "current", L: l, Phases: 5},
		})
		names = append(names, fmt.Sprintf("l=%d", l))
	}
	print := func(ms []reqsched.Measurement, done []bool) {
		fmt.Println("l,d,opt,alg,measured,analytic,asymptote")
		for i, m := range ms {
			if done != nil && !done[i] {
				continue
			}
			l := ls[i]
			fmt.Printf("%d,%d,%d,%d,%s,%.6f,%.6f\n",
				l, m.D, m.OPT, m.ALG, reqsched.FormatRatio(m.Ratio(), 6), reqsched.AdversaryCurrentBound(l), 1.5819767)
		}
	}
	return specs, names, print
}

func sweepLoad() ([]grid.Spec, []string, printer) {
	n, d := 8, 4
	fracs := []float64{0.5, 0.8, 1.0, 1.2, 1.5, 2.0, 3.0}
	snames := make([]string, 0)
	for name := range reqsched.Strategies() {
		snames = append(snames, name)
	}
	sort.Strings(snames)

	type point struct {
		name string
		frac float64
	}
	var specs []grid.Spec
	var names []string
	var points []point
	for _, frac := range fracs {
		for _, name := range snames {
			specs = append(specs, grid.Spec{
				Strategy: name,
				// The (seeded, deterministic) trace is regenerated per job
				// from the spec, so concurrent runs — and worker processes —
				// never share storage.
				Build: grid.BuildSpec{Kind: "uniform", N: n, D: d, Rounds: 150, Rate: frac * float64(n), Seed: 7},
			})
			names = append(names, fmt.Sprintf("%s@%.2f", name, frac))
			points = append(points, point{name, frac})
		}
	}
	print := func(ms []reqsched.Measurement, done []bool) {
		fmt.Println("strategy,rate,opt,alg,measured")
		for i, m := range ms {
			if done != nil && !done[i] {
				continue
			}
			p := points[i]
			fmt.Printf("%s,%.2f,%d,%d,%s\n", p.name, p.frac, m.OPT, m.ALG, reqsched.FormatRatio(m.Ratio(), 6))
		}
	}
	return specs, names, print
}
