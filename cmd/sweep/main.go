// Command sweep produces the derived data series of the reproduction
// (DESIGN.md Fig-A/Fig-B) as CSV:
//
//	-mode d     ratio of each strategy on its own adversary as d grows
//	            (the shape of the Table 1 bound formulas);
//	-mode l     A_current's ratio versus l, converging to e/(e-1);
//	-mode load  empirical ratio of every strategy on random load as the
//	            arrival rate sweeps past saturation.
//
// All modes run their measurements on a -workers sized pool; rows are printed
// in a fixed order regardless of the worker count.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"reqsched"
)

func main() {
	mode := flag.String("mode", "d", "d | l | load")
	phases := flag.Int("phases", 60, "adversary phases")
	workers := flag.Int("workers", 0, "measurement pool size (<= 0: GOMAXPROCS)")
	flag.Parse()

	switch *mode {
	case "d":
		sweepD(*phases, *workers)
	case "l":
		sweepL(*workers)
	case "load":
		sweepLoad(*workers)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// fmtRatio renders a measured competitive ratio, spelling out starvation as
// "inf" (the strategy served nothing while OPT served something) instead of
// a misleading 0.000000.
func fmtRatio(r float64) string {
	if math.IsInf(r, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.6f", r)
}

func sweepD(phases, workers int) {
	type point struct {
		name string
		d    int
	}
	type row struct {
		name  string
		mk    func() reqsched.Strategy
		build func(d int) reqsched.Construction
		ds    []int
	}
	rows := []row{
		{"A_fix", reqsched.NewAFix,
			func(d int) reqsched.Construction { return reqsched.AdversaryFix(d, phases) },
			[]int{2, 3, 4, 6, 8, 12, 16, 24}},
		{"A_fix_balance", reqsched.NewAFixBalance,
			func(d int) reqsched.Construction { return reqsched.AdversaryFixBalance(d, phases) },
			[]int{2, 4, 6, 8, 12, 16, 24}},
		{"A_eager", reqsched.NewAEager,
			func(d int) reqsched.Construction { return reqsched.AdversaryEager(d, phases) },
			[]int{2, 4, 6, 8, 12, 16, 24}},
		{"A_balance", reqsched.NewABalance,
			func(d int) reqsched.Construction {
				return reqsched.AdversaryBalance((d+1)/3, 32, phases)
			},
			[]int{2, 5, 8, 11, 14}},
		{"A_local_fix", reqsched.NewALocalFix,
			func(d int) reqsched.Construction { return reqsched.AdversaryLocalFix(d, phases) },
			[]int{1, 2, 4, 8, 16}},
	}
	var jobs []reqsched.MeasureJob
	var points []point
	for _, r := range rows {
		for _, d := range r.ds {
			r, d := r, d
			jobs = append(jobs, reqsched.MeasureJob{
				Name:     fmt.Sprintf("%s/d=%d", r.name, d),
				Build:    func() reqsched.Construction { return r.build(d) },
				Strategy: r.mk,
			})
			points = append(points, point{r.name, d})
		}
	}
	ms := reqsched.MeasureParallel(jobs, workers)
	fmt.Println("strategy,d,opt,alg,measured,provenLB,provenUB")
	for i, m := range ms {
		p := points[i]
		fmt.Printf("%s,%d,%d,%d,%s,%.6f,%s\n",
			p.name, p.d, m.OPT, m.ALG, fmtRatio(m.Ratio()), m.Bound, ub(p.name, p.d))
	}
}

func ub(name string, d int) string {
	s := reqsched.StrategyByName(name)
	if s == nil {
		return ""
	}
	// UpperBound formulas mirror Table 1; reuse the measurement bound field
	// by probing a tiny run is overkill — recompute directly.
	switch name {
	case "A_fix", "A_current", "A_local_fix":
		if name == "A_local_fix" {
			return "2.000000"
		}
		return fmt.Sprintf("%.6f", 2-1/float64(d))
	case "A_fix_balance":
		b := 4.0 / 3.0
		if v := 2 - 2/float64(d); v > b {
			b = v
		}
		if v := 2 - 3/(float64(d)+2); v > b {
			b = v
		}
		return fmt.Sprintf("%.6f", b)
	case "A_eager":
		return fmt.Sprintf("%.6f", (3*float64(d)-2)/(2*float64(d)-1))
	case "A_balance":
		if d == 2 {
			return fmt.Sprintf("%.6f", 4.0/3.0)
		}
		return fmt.Sprintf("%.6f", 6*(float64(d)-1)/(4*float64(d)-3))
	}
	return ""
}

func sweepL(workers int) {
	ls := []int{2, 3, 4, 5, 6, 7}
	var jobs []reqsched.MeasureJob
	for _, l := range ls {
		l := l
		jobs = append(jobs, reqsched.MeasureJob{
			Name:     fmt.Sprintf("l=%d", l),
			Build:    func() reqsched.Construction { return reqsched.AdversaryCurrent(l, 5) },
			Strategy: reqsched.NewACurrent,
		})
	}
	ms := reqsched.MeasureParallel(jobs, workers)
	fmt.Println("l,d,opt,alg,measured,analytic,asymptote")
	for i, m := range ms {
		l := ls[i]
		fmt.Printf("%d,%d,%d,%d,%s,%.6f,%.6f\n",
			l, m.D, m.OPT, m.ALG, fmtRatio(m.Ratio()), reqsched.AdversaryCurrentBound(l), 1.5819767)
	}
}

func sweepLoad(workers int) {
	n, d := 8, 4
	fracs := []float64{0.5, 0.8, 1.0, 1.2, 1.5, 2.0, 3.0}
	names := make([]string, 0)
	for name := range reqsched.Strategies() {
		names = append(names, name)
	}
	sort.Strings(names)

	type point struct {
		name string
		frac float64
	}
	var jobs []reqsched.MeasureJob
	var points []point
	for _, frac := range fracs {
		cfg := reqsched.WorkloadConfig{N: n, D: d, Rounds: 150, Rate: frac * float64(n), Seed: 7}
		for _, name := range names {
			name := name
			jobs = append(jobs, reqsched.MeasureJob{
				Name: fmt.Sprintf("%s@%.2f", name, frac),
				// Regenerate the (seeded, deterministic) trace per job so
				// concurrent runs never share storage.
				Build: func() reqsched.Construction {
					return reqsched.Construction{Trace: reqsched.Uniform(cfg)}
				},
				Strategy: func() reqsched.Strategy { return reqsched.StrategyByName(name) },
			})
			points = append(points, point{name, frac})
		}
	}
	ms := reqsched.MeasureParallel(jobs, workers)
	fmt.Println("strategy,rate,opt,alg,measured")
	for i, m := range ms {
		p := points[i]
		fmt.Printf("%s,%.2f,%d,%d,%s\n", p.name, p.frac, m.OPT, m.ALG, fmtRatio(m.Ratio()))
	}
}
