// Command sweep produces the derived data series of the reproduction
// (DESIGN.md Fig-A/Fig-B) as CSV:
//
//	-mode d     ratio of each strategy on its own adversary as d grows
//	            (the shape of the Table 1 bound formulas);
//	-mode l     A_current's ratio versus l, converging to e/(e-1);
//	-mode load  empirical ratio of every strategy on random load as the
//	            arrival rate sweeps past saturation.
package main

import (
	"flag"
	"fmt"
	"os"

	"reqsched"
)

func main() {
	mode := flag.String("mode", "d", "d | l | load")
	phases := flag.Int("phases", 60, "adversary phases")
	flag.Parse()

	switch *mode {
	case "d":
		sweepD(*phases)
	case "l":
		sweepL()
	case "load":
		sweepLoad()
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func sweepD(phases int) {
	fmt.Println("strategy,d,opt,alg,measured,provenLB,provenUB")
	type row struct {
		name  string
		mk    func() reqsched.Strategy
		build func(d int) reqsched.Construction
		ds    []int
	}
	rows := []row{
		{"A_fix", reqsched.NewAFix,
			func(d int) reqsched.Construction { return reqsched.AdversaryFix(d, phases) },
			[]int{2, 3, 4, 6, 8, 12, 16, 24}},
		{"A_fix_balance", reqsched.NewAFixBalance,
			func(d int) reqsched.Construction { return reqsched.AdversaryFixBalance(d, phases) },
			[]int{2, 4, 6, 8, 12, 16, 24}},
		{"A_eager", reqsched.NewAEager,
			func(d int) reqsched.Construction { return reqsched.AdversaryEager(d, phases) },
			[]int{2, 4, 6, 8, 12, 16, 24}},
		{"A_balance", reqsched.NewABalance,
			func(d int) reqsched.Construction {
				return reqsched.AdversaryBalance((d+1)/3, 32, phases)
			},
			[]int{2, 5, 8, 11, 14}},
		{"A_local_fix", reqsched.NewALocalFix,
			func(d int) reqsched.Construction { return reqsched.AdversaryLocalFix(d, phases) },
			[]int{1, 2, 4, 8, 16}},
	}
	for _, r := range rows {
		for _, d := range r.ds {
			c := r.build(d)
			m := reqsched.MeasureConstruction(c, r.mk())
			fmt.Printf("%s,%d,%d,%d,%.6f,%.6f,%s\n",
				r.name, d, m.OPT, m.ALG, m.Ratio(), c.Bound, ub(r.name, d))
		}
	}
}

func ub(name string, d int) string {
	s := reqsched.StrategyByName(name)
	if s == nil {
		return ""
	}
	// UpperBound formulas mirror Table 1; reuse the measurement bound field
	// by probing a tiny run is overkill — recompute directly.
	switch name {
	case "A_fix", "A_current", "A_local_fix":
		if name == "A_local_fix" {
			return "2.000000"
		}
		return fmt.Sprintf("%.6f", 2-1/float64(d))
	case "A_fix_balance":
		b := 4.0 / 3.0
		if v := 2 - 2/float64(d); v > b {
			b = v
		}
		if v := 2 - 3/(float64(d)+2); v > b {
			b = v
		}
		return fmt.Sprintf("%.6f", b)
	case "A_eager":
		return fmt.Sprintf("%.6f", (3*float64(d)-2)/(2*float64(d)-1))
	case "A_balance":
		if d == 2 {
			return fmt.Sprintf("%.6f", 4.0/3.0)
		}
		return fmt.Sprintf("%.6f", 6*(float64(d)-1)/(4*float64(d)-3))
	}
	return ""
}

func sweepL() {
	fmt.Println("l,d,opt,alg,measured,analytic,asymptote")
	for l := 2; l <= 7; l++ {
		c := reqsched.AdversaryCurrent(l, 5)
		m := reqsched.MeasureConstruction(c, reqsched.NewACurrent())
		fmt.Printf("%d,%d,%d,%d,%.6f,%.6f,%.6f\n",
			l, c.D, m.OPT, m.ALG, m.Ratio(), reqsched.AdversaryCurrentBound(l), 1.5819767)
	}
}

func sweepLoad() {
	fmt.Println("strategy,rate,opt,alg,measured")
	n, d := 8, 4
	for _, frac := range []float64{0.5, 0.8, 1.0, 1.2, 1.5, 2.0, 3.0} {
		cfg := reqsched.WorkloadConfig{N: n, D: d, Rounds: 150, Rate: frac * float64(n), Seed: 7}
		tr := reqsched.Uniform(cfg)
		opt := reqsched.Optimum(tr)
		for name, s := range reqsched.Strategies() {
			res := reqsched.Run(s, tr)
			r := 0.0
			if res.Fulfilled > 0 {
				r = float64(opt) / float64(res.Fulfilled)
			}
			fmt.Printf("%s,%.2f,%d,%d,%.6f\n", name, frac, opt, res.Fulfilled, r)
		}
	}
}
