// Command serve runs the live network-facing scheduler daemon; see
// app.ServeMain.
package main

import (
	"os"

	"reqsched/internal/app"
)

func main() { os.Exit(app.ServeMain(os.Args[1:], os.Stdout, os.Stderr)) }
