// Command gridworker is the subprocess half of the fault-tolerant sweep
// grid: it speaks the grid JSONL protocol on stdin/stdout — one job line in,
// heartbeat lines while measuring, one sealed result (or error) line out per
// job — and exits 0 on stdin EOF. The supervisor (internal/grid.Run, wired
// through `sweep -shard N`) spawns a pool of these, enforces per-job
// deadlines and heartbeat liveness, and re-verifies every returned record,
// so a worker that OOMs, hangs, or corrupts its output costs one retry, not
// the grid.
//
// The chaos environment variables GRID_CHAOS / GRID_CHAOS_ONCE (see
// internal/grid/chaos) arm deterministic fault injection for the failure
// property tests; production runs leave them unset.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"reqsched/internal/grid"
	"reqsched/internal/grid/chaos"
)

func main() {
	hb := flag.Duration("hb", 2*time.Second, "heartbeat interval while a job is running")
	flag.Parse()

	faults, err := chaos.FromEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := grid.WorkerMain(os.Stdin, os.Stdout, *hb, faults); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
