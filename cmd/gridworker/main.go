// Command gridworker is the worker half of the fault-tolerant sweep grid:
// by default a subprocess speaking the JSONL protocol on stdin/stdout, with
// -listen a TCP daemon serving the same protocol to remote supervisors
// (`sweep -workers-at`); see app.GridworkerMain.
package main

import (
	"os"

	"reqsched/internal/app"
)

func main() { os.Exit(app.GridworkerMain(os.Args[1:], os.Stdout, os.Stderr)) }
