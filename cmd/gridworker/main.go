// Command gridworker is the subprocess half of the fault-tolerant sweep
// grid; see app.GridworkerMain.
package main

import (
	"os"

	"reqsched/internal/app"
)

func main() { os.Exit(app.GridworkerMain(os.Args[1:], os.Stdout, os.Stderr)) }
