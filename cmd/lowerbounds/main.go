// Command lowerbounds shows the convergence of each adversarial
// construction: the measured ratio OPT/ALG as a function of the number of
// phases, approaching the theorem's bound from below. With -csv it emits
// machine-readable series (construction, phases, opt, alg, ratio, bound) for
// plotting.
package main

import (
	"flag"
	"fmt"

	"reqsched"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	flag.Parse()

	phaseCounts := []int{2, 5, 10, 20, 40, 80, 160}

	type series struct {
		name  string
		mk    func() reqsched.Strategy
		build func(phases int) reqsched.Construction
	}
	all := []series{
		{"fix(d=4) Thm2.1", reqsched.NewAFix,
			func(p int) reqsched.Construction { return reqsched.AdversaryFix(4, p) }},
		{"current(l=5) Thm2.2", reqsched.NewACurrent,
			func(p int) reqsched.Construction { return reqsched.AdversaryCurrent(5, p) }},
		{"fix_balance(d=8) Thm2.3", reqsched.NewAFixBalance,
			func(p int) reqsched.Construction { return reqsched.AdversaryFixBalance(8, p) }},
		{"eager(d=4) Thm2.4", reqsched.NewAEager,
			func(p int) reqsched.Construction { return reqsched.AdversaryEager(4, p) }},
		{"balance(x=2,k=32) Thm2.5", reqsched.NewABalance,
			func(p int) reqsched.Construction { return reqsched.AdversaryBalance(2, 32, p) }},
		{"universal(d=6) Thm2.6 vs A_balance", reqsched.NewABalance,
			func(p int) reqsched.Construction { return reqsched.AdversaryUniversal(6, p) }},
		{"local_fix(d=4) Thm3.7", reqsched.NewALocalFix,
			func(p int) reqsched.Construction { return reqsched.AdversaryLocalFix(4, p) }},
		{"edf_worst(d=4) Obs3.2", reqsched.NewEDF,
			func(p int) reqsched.Construction { return reqsched.AdversaryEDF(4, p) }},
	}

	if *csv {
		fmt.Println("construction,phases,opt,alg,ratio,bound")
	}
	for _, s := range all {
		if !*csv {
			fmt.Printf("%s (bound %.4f)\n", s.name, s.build(1).Bound)
		}
		for _, p := range phaseCounts {
			c := s.build(p)
			m := reqsched.MeasureConstruction(c, s.mk())
			if *csv {
				fmt.Printf("%s,%d,%d,%d,%.6f,%.6f\n", s.name, p, m.OPT, m.ALG, m.Ratio(), c.Bound)
			} else {
				fmt.Printf("  phases=%4d  OPT=%7d  ALG=%7d  ratio=%.4f\n", p, m.OPT, m.ALG, m.Ratio())
			}
		}
		if !*csv {
			fmt.Println()
		}
	}
}
