// Command lowerbounds plots lower-bound convergence; see app.LowerboundsMain.
package main

import (
	"os"

	"reqsched/internal/app"
)

func main() { os.Exit(app.LowerboundsMain(os.Args[1:], os.Stdout, os.Stderr)) }
