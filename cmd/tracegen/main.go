// Command tracegen generates, inspects and replays serialized traces; see
// app.TracegenMain.
package main

import (
	"os"

	"reqsched/internal/app"
)

func main() { os.Exit(app.TracegenMain(os.Args[1:], os.Stdout, os.Stderr)) }
