// Command tracegen generates, inspects and replays serialized traces.
//
//	tracegen gen  -workload zipf -n 8 -d 4 -rounds 100 -out trace.json
//	tracegen gen  -adversary fix -d 4 -phases 40 -out fix.json
//	tracegen gen  -workload bursty -rounds 100000 -stream -out trace.jsonl
//	tracegen info -in trace.json
//	tracegen info -in trace.jsonl -stream -workers 4
//	tracegen run  -in trace.json -strategy A_balance
//
// With -stream, gen emits the JSONL stream format and info evaluates the
// offline optimum segment by segment without materializing the trace.
package main

import (
	"flag"
	"fmt"
	"os"

	"reqsched"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "run":
		run(os.Args[2:])
	case "show":
		show(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tracegen gen|info|run|show [flags]")
	os.Exit(2)
}

// show renders a strategy's schedule on a trace as an ASCII grid.
func show(args []string) {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	in := fs.String("in", "", "trace file")
	name := fs.String("strategy", "A_balance", "strategy name")
	from := fs.Int("from", 0, "first round to draw")
	to := fs.Int("to", -1, "one past the last round to draw (-1: all)")
	losses := fs.Bool("losses", false, "also list unserved requests")
	fs.Parse(args)
	if *in == "" {
		usage()
	}
	tr := load(*in)
	s := reqsched.StrategyByName(*name)
	if s == nil {
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *name)
		os.Exit(2)
	}
	res, err := reqsched.RunChecked(s, tr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: invalid trace %s: %v\n", *in, err)
		os.Exit(1)
	}
	fmt.Print(reqsched.RenderGrid(tr, res.Log, *from, *to))
	if *losses {
		fmt.Println()
		fmt.Print(reqsched.RenderLosses(tr, res.Log))
	}
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		wl     = fs.String("workload", "uniform", "uniform | zipf | bursty | video | single")
		adv    = fs.String("adversary", "", "fix | fixbalance | eager | balance | localfix | edf (overrides -workload)")
		n      = fs.Int("n", 8, "resources")
		d      = fs.Int("d", 4, "deadline window")
		rounds = fs.Int("rounds", 100, "rounds with arrivals")
		rate   = fs.Float64("rate", 0, "mean arrivals per round (default n)")
		seed   = fs.Int64("seed", 1, "seed")
		zipfS  = fs.Float64("zipf", 1.4, "zipf exponent")
		phases = fs.Int("phases", 40, "adversary phases")
		out    = fs.String("out", "", "output file (default stdout)")
		stream = fs.Bool("stream", false, "emit the streaming JSONL format instead of one JSON document")
	)
	fs.Parse(args)
	if *rate == 0 {
		*rate = float64(*n)
	}
	cfg := reqsched.WorkloadConfig{N: *n, D: *d, Rounds: *rounds, Rate: *rate, Seed: *seed}

	var tr *reqsched.Trace
	if *adv != "" {
		var c reqsched.Construction
		switch *adv {
		case "fix":
			c = reqsched.AdversaryFix(*d, *phases)
		case "fixbalance":
			c = reqsched.AdversaryFixBalance(*d, *phases)
		case "eager":
			c = reqsched.AdversaryEager(*d, *phases)
		case "balance":
			c = reqsched.AdversaryBalance((*d+1)/3, 16, *phases)
		case "localfix":
			c = reqsched.AdversaryLocalFix(*d, *phases)
		case "edf":
			c = reqsched.AdversaryEDF(*d, *phases)
		default:
			fmt.Fprintf(os.Stderr, "unknown adversary %q\n", *adv)
			os.Exit(2)
		}
		tr = c.Trace
	} else {
		switch *wl {
		case "uniform":
			tr = reqsched.Uniform(cfg)
		case "zipf":
			tr = reqsched.Zipf(cfg, *zipfS)
		case "bursty":
			tr = reqsched.Bursty(cfg, 5, 10, 3**rate)
		case "video":
			tr = reqsched.VideoServer(cfg, 100, *zipfS)
		case "single":
			tr = reqsched.SingleChoice(cfg)
		default:
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
			os.Exit(2)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	write := reqsched.WriteTrace
	if *stream {
		write = reqsched.WriteTraceStream
	}
	if err := write(w, tr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func load(path string) *reqsched.Trace {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := reqsched.ReadTrace(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return tr
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "trace file")
	stream := fs.Bool("stream", false, "treat the input as a JSONL stream; evaluate segment by segment")
	workers := fs.Int("workers", 0, "segment solver pool for -stream (<= 0: GOMAXPROCS)")
	fs.Parse(args)
	if *in == "" {
		usage()
	}
	if *stream {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		opt, nsegs, err := reqsched.OptimumStream(reqsched.TraceSegments(f), *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("offline optimum: %d over %d independent segments\n", opt, nsegs)
		return
	}
	tr := load(*in)
	fmt.Println(reqsched.SummarizeTrace(tr))
	fmt.Printf("offline optimum: %d of %d\n", reqsched.Optimum(tr), tr.NumRequests())
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	in := fs.String("in", "", "trace file")
	name := fs.String("strategy", "A_balance", "strategy name")
	fs.Parse(args)
	if *in == "" {
		usage()
	}
	tr := load(*in)
	s := reqsched.StrategyByName(*name)
	if s == nil {
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *name)
		os.Exit(2)
	}
	res, err := reqsched.RunChecked(s, tr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: invalid trace %s: %v\n", *in, err)
		os.Exit(1)
	}
	opt := reqsched.Optimum(tr)
	fmt.Printf("%s: served %d / %d, expired %d, OPT %d, ratio %.4f, mean latency %.2f\n",
		res.Strategy, res.Fulfilled, tr.NumRequests(), res.Expired, opt,
		float64(opt)/float64(res.Fulfilled), res.MeanLatency())
}
