// Command paper reproduces the paper's evaluation; see app.PaperMain.
package main

import (
	"os"

	"reqsched/internal/app"
)

func main() { os.Exit(app.PaperMain(os.Args[1:], os.Stdout, os.Stderr)) }
