// Command paper reproduces the paper's entire evaluation in one run — the
// artifact script. Sections: Table 1 (global strategies), the local
// strategies, lower-bound convergence, the tie-breaking ablation, the EDF
// observations, and the Section 1.1 balls-into-bins measurement that
// motivates the two-choice model. Use -quick for a fast pass and -full for
// publication-scale phase counts.
package main

import (
	"flag"
	"fmt"

	"reqsched"
	"reqsched/internal/ballsbins"
	"reqsched/internal/table"
)

func main() {
	quick := flag.Bool("quick", false, "small phase counts (seconds)")
	full := flag.Bool("full", false, "publication-scale phase counts (minutes)")
	flag.Parse()

	cfg := table.Config{Phases: 60, Groups: 32}
	if *quick {
		cfg = table.Config{Phases: 12, Groups: 8}
	}
	if *full {
		cfg = table.Config{Phases: 200, Groups: 64}
	}

	section("Table 1 — global strategies (lower-bound adversaries, measured vs proven)")
	fmt.Print(table.Format(table.Rows(cfg)))

	section("Local strategies and EDF (Theorems 3.7, 3.8; Observation 3.2)")
	fmt.Print(table.Format(table.LocalRows(cfg)))

	section("Lower-bound convergence (A_fix, d=4): ratio approaches 2 - 1/d = 1.75")
	for _, p := range []int{5, 20, 80, 320} {
		m := reqsched.MeasureConstruction(reqsched.AdversaryFix(4, p), reqsched.NewAFix())
		fmt.Printf("  phases %4d: ratio %.4f\n", p, m.Ratio())
	}

	section("Tie-breaking ablation: what does each adversary exploit?")
	fixTrace := reqsched.AdversaryFix(4, cfg.Phases).Trace
	eagerTrace := reqsched.AdversaryEager(4, cfg.Phases).Trace
	rows := []struct {
		name string
		tr   *reqsched.Trace
		mk   func() reqsched.Strategy
	}{
		{"fix adversary, original       ", fixTrace, reqsched.NewAFix},
		{"fix adversary, shuffled alts  ", reqsched.ShuffleAlts(fixTrace, 1), reqsched.NewAFix},
		{"fix adversary, shuffled order ", reqsched.ShuffleArrivalOrder(fixTrace, 1), reqsched.NewAFix},
		{"eager adversary, original     ", eagerTrace, reqsched.NewAEager},
		{"eager adversary, shuffled alts", reqsched.ShuffleAlts(eagerTrace, 1), reqsched.NewAEager},
		{"eager adversary, shuffled ord ", reqsched.ShuffleArrivalOrder(eagerTrace, 1), reqsched.NewAEager},
	}
	for _, r := range rows {
		m := reqsched.Measure(r.mk(), r.tr)
		fmt.Printf("  %s ratio %.4f\n", r.name, m.Ratio())
	}

	section("Observation 3.1/3.2 — EDF")
	single := reqsched.SingleChoice(reqsched.WorkloadConfig{N: 4, D: 4, Rounds: 60, Rate: 6, Seed: 2})
	edf := reqsched.Run(reqsched.NewEDF(), single)
	fmt.Printf("  single-choice: EDF %d == OPT %d\n", edf.Fulfilled, reqsched.Optimum(single))
	worst := reqsched.AdversaryEDF(4, cfg.Phases)
	m := reqsched.MeasureConstruction(worst, reqsched.NewEDF())
	fmt.Printf("  two-choice worst case: ratio %.4f (exactly 2)\n", m.Ratio())

	section("Section 1.1 — the power of two choices (balls into bins, n = 100000)")
	for _, c := range []int{1, 2, 3} {
		fmt.Printf("  c=%d: max load %d\n", c, ballsbins.MaxLoad(ballsbins.Greedy(100000, 100000, c, 1)))
	}
	cres := ballsbins.Collision(100000, 100000, 2, 4, 40, 1)
	fmt.Printf("  collision protocol: placed all in %d communication rounds\n", cres.Rounds)
}

func section(title string) {
	fmt.Printf("\n=== %s ===\n\n", title)
}
