// Command bench records the engine's performance baseline as JSON. It runs
// the BenchmarkEngine workload (uniform, N=16, D=6, 300 rounds, rate 18,
// seed 11) through each strategy under testing.Benchmark and emits one entry
// per strategy with ns/op, allocs/op, bytes/op and derived throughput. The
// checked-in BENCH_engine.json is the reference the alloc-regression tests in
// EXPERIMENTS.md compare against:
//
//	go run ./cmd/bench -out BENCH_engine.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"reqsched"
)

// Entry is one strategy's measured baseline.
type Entry struct {
	Strategy       string  `json:"strategy"`
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	RoundsPerSec   float64 `json:"rounds_per_sec"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	Fulfilled      int     `json:"fulfilled"`
}

// Baseline is the file format of BENCH_engine.json.
type Baseline struct {
	Workload struct {
		N        int     `json:"n"`
		D        int     `json:"d"`
		Rounds   int     `json:"rounds"`
		Rate     float64 `json:"rate"`
		Seed     int64   `json:"seed"`
		Requests int     `json:"requests"`
	} `json:"workload"`
	Entries []Entry `json:"entries"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	benchtime := flag.Duration("benchtime", 0, "per-strategy benchmark time (default testing's 1s)")
	flag.Parse()
	if *benchtime > 0 {
		// testing.Benchmark honours the -test.benchtime flag.
		flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ExitOnError)
		testing.Init()
		flag.Set("test.benchtime", benchtime.String())
	}

	cfg := reqsched.WorkloadConfig{N: 16, D: 6, Rounds: 300, Rate: 18, Seed: 11}
	tr := reqsched.Uniform(cfg)

	var base Baseline
	base.Workload.N = cfg.N
	base.Workload.D = cfg.D
	base.Workload.Rounds = cfg.Rounds
	base.Workload.Rate = cfg.Rate
	base.Workload.Seed = cfg.Seed
	base.Workload.Requests = tr.NumRequests()

	for _, name := range []string{
		"A_fix", "A_current", "A_fix_balance", "A_eager", "A_balance",
		"EDF", "first_fit", "A_local_fix", "A_local_eager",
	} {
		name := name
		var fulfilled int
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := reqsched.RunChecked(reqsched.StrategyByName(name), tr)
				if err != nil {
					b.Fatalf("run %s: %v", name, err)
				}
				fulfilled = res.Fulfilled
			}
		})
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		opsPerSec := 0.0
		if nsPerOp > 0 {
			opsPerSec = 1e9 / nsPerOp
		}
		totalRounds := float64(tr.Horizon())
		base.Entries = append(base.Entries, Entry{
			Strategy:       name,
			NsPerOp:        nsPerOp,
			AllocsPerOp:    r.AllocsPerOp(),
			BytesPerOp:     r.AllocedBytesPerOp(),
			RoundsPerSec:   opsPerSec * totalRounds,
			RequestsPerSec: opsPerSec * float64(tr.NumRequests()),
			Fulfilled:      fulfilled,
		})
		fmt.Fprintf(os.Stderr, "%-16s %12.0f ns/op %8d allocs/op %10d B/op  served %d\n",
			name, nsPerOp, r.AllocsPerOp(), r.AllocedBytesPerOp(), fulfilled)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&base); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
