// Command bench records the engine's performance baseline; see app.BenchMain.
package main

import (
	"os"

	"reqsched/internal/app"
)

func main() { os.Exit(app.BenchMain(os.Args[1:], os.Stdout, os.Stderr)) }
