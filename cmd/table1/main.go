// Command table1 regenerates the paper's Table 1: for every strategy it runs
// the corresponding lower-bound adversary, measures the empirical competitive
// ratio OPT/ALG, and prints it next to the proven lower and upper bounds.
// Ratios approach the proven lower bound from below as -phases grows (the
// competitive definition's additive constant washes out) and must never
// exceed the proven upper bound.
//
// Usage:
//
//	table1 [-phases N] [-groups K] [-local]
package main

import (
	"flag"
	"fmt"

	"reqsched/internal/table"
)

func main() {
	phases := flag.Int("phases", 40, "adversary phases/intervals per run")
	groups := flag.Int("groups", 32, "resource groups for the Theorem 2.5 construction")
	localOnly := flag.Bool("local", false, "only the local strategies (Theorems 3.7/3.8)")
	flag.Parse()

	cfg := table.Config{Phases: *phases, Groups: *groups}
	if !*localOnly {
		fmt.Println("Table 1 — global strategies (measured on each row's lower-bound adversary)")
		fmt.Println()
		fmt.Print(table.Format(table.Rows(cfg)))
		fmt.Println()
	}
	fmt.Println("Local strategies and EDF (Theorems 3.7, 3.8; Observation 3.2)")
	fmt.Println()
	fmt.Print(table.Format(table.LocalRows(cfg)))
}
