// Command table1 reproduces the paper's Table 1; see app.Table1Main.
package main

import (
	"os"

	"reqsched/internal/app"
)

func main() { os.Exit(app.Table1Main(os.Args[1:], os.Stdout, os.Stderr)) }
