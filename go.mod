module reqsched

go 1.22
