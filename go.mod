module reqsched

go 1.23
