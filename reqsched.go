// Package reqsched is a faithful, executable reproduction of
//
//	Berenbrink, Riedel, Scheideler:
//	"Simple Competitive Request Scheduling Strategies", SPAA 1999.
//
// The model: n resources work in synchronized rounds, one request served per
// resource per round. Each request names two alternative resources and must
// be served within d rounds of its arrival. An adversary injects requests;
// the goal is to maximize the number of requests served before their
// deadlines, measured by the competitive ratio against the offline optimum
// (a maximum matching between requests and time slots).
//
// The package exposes:
//
//   - the round-synchronous simulation engine (Run, Builder, Trace, Window);
//   - the paper's five global strategies (NewAFix, NewACurrent,
//     NewAFixBalance, NewAEager, NewABalance), the EDF reference strategies,
//     and two baselines;
//   - the two local (distributed, message-passing) strategies NewALocalFix
//     and NewALocalEager with communication-round accounting;
//   - the offline optimum (Optimum, OptimumSchedule);
//   - every adversarial lower-bound construction from the paper's proofs
//     (AdversaryFix .. AdversaryUniversal) and the measurement harness that
//     regenerates Table 1 (Measure, MeasureConstruction);
//   - synthetic workload generators (Uniform, Zipf, Bursty, VideoServer, ...)
//     and JSON trace serialization.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every bound.
package reqsched

import (
	"io"
	"iter"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
	"reqsched/internal/local"
	"reqsched/internal/offline"
	"reqsched/internal/ratio"
	"reqsched/internal/registry"
	"reqsched/internal/render"
	"reqsched/internal/strategies"
	"reqsched/internal/trace"
	"reqsched/internal/workload"
)

// Core model types, re-exported.
type (
	// Request is one two-choice request with a deadline window.
	Request = core.Request
	// Trace is a complete request sequence.
	Trace = core.Trace
	// Builder incrementally constructs traces.
	Builder = core.Builder
	// Strategy is an online scheduling strategy driven by Run.
	Strategy = core.Strategy
	// RoundContext is what a Strategy sees each round.
	RoundContext = core.RoundContext
	// Window is the sliding schedule a Strategy mutates.
	Window = core.Window
	// Result aggregates one simulation run.
	Result = core.Result
	// Fulfillment is one served request in a Result's log.
	Fulfillment = core.Fulfillment
	// Construction is an adversarial lower-bound instance.
	Construction = adversary.Construction
	// Measurement is one empirical competitive-ratio data point.
	Measurement = ratio.Measurement
	// WorkloadConfig parameterizes the synthetic generators.
	WorkloadConfig = workload.Config
	// TraceStats summarizes a trace.
	TraceStats = trace.Stats
)

// NewBuilder returns a trace builder for n resources and default deadline
// window d.
func NewBuilder(n, d int) *Builder { return core.NewBuilder(n, d) }

// Run simulates strategy s over trace tr. The trace must be valid; Run
// panics otherwise (a programming error in a generator). Tools replaying
// untrusted serialized traces should use RunChecked.
func Run(s Strategy, tr *Trace) *Result { return core.Run(s, tr) }

// RunChecked is Run for untrusted traces: it returns an error naming the
// first offending request instead of panicking.
func RunChecked(s Strategy, tr *Trace) (*Result, error) { return core.RunChecked(s, tr) }

// Series is a per-round statistics trace; RoundStats one row of it.
type (
	Series     = core.Series
	RoundStats = core.RoundStats
)

// RunWithSeries runs like Run and also records per-round statistics
// (arrivals, service, expiry, backlog, idle resources).
func RunWithSeries(s Strategy, tr *Trace) (*Result, *Series) {
	return core.RunWithSeries(s, tr)
}

// AugmentingOrders diffs a schedule against one offline optimum and returns
// the histogram of augmenting-path orders (number of requests per path) —
// the analysis device of the paper's upper-bound proofs. The histogram total
// equals OPT minus the schedule's size.
func AugmentingOrders(tr *Trace, log []Fulfillment) map[int]int {
	return offline.AugmentingOrders(tr, log)
}

// ValidateLog checks that a fulfillment log is a feasible schedule for tr.
func ValidateLog(tr *Trace, log []Fulfillment) error { return core.ValidateLog(tr, log) }

// Optimum returns the number of requests an optimal offline algorithm serves.
func Optimum(tr *Trace) int { return offline.Optimum(tr) }

// OptimumParallel returns exactly Optimum(tr), computed by decomposing the
// trace into independent segments (clean time cuts, with a union-find
// connected-components fallback) and solving each with Hopcroft–Karp on a
// worker pool (workers <= 0: GOMAXPROCS). Peak memory is proportional to the
// largest segment rather than the horizon.
func OptimumParallel(tr *Trace, workers int) int { return offline.OptimumParallel(tr, workers) }

// TraceSegmentCount returns how many independent pieces OptimumParallel
// decomposes tr into (time segments, or slot-graph components when the trace
// has no clean time cut).
func TraceSegmentCount(tr *Trace) int {
	segs := offline.SegmentTrace(tr)
	if len(segs) <= 1 {
		segs = offline.Components(tr)
	}
	return len(segs)
}

// OptimumIncremental returns exactly Optimum(tr), computed by maintaining one
// matching over the growing request/slot graph — a single augmenting-path
// search per request — and sealing it at every clean segment cut. No
// per-segment graph construction or sub-trace materialization: the scratch is
// reused across the whole trace, which is what the serve daemon's rolling
// ratio runs on.
func OptimumIncremental(tr *Trace) int { return offline.OptimumIncremental(tr) }

// OptimumStream sums the offline optimum over a stream of independent
// sub-traces (e.g. TraceSegments over a JSONL stream) on a worker pool,
// holding at most workers+1 segments in memory — the bounded-memory
// evaluation path for traces too large to materialize. It returns the total
// optimum and the number of segments consumed.
func OptimumStream(segments iter.Seq2[*Trace, error], workers int) (opt, nsegs int, err error) {
	return offline.OptimumStream(segments, workers)
}

// OptimumSchedule returns one optimal offline schedule.
func OptimumSchedule(tr *Trace) []Fulfillment { return offline.OptimumSchedule(tr) }

// OptimumMinLatency returns an optimal offline schedule that additionally
// minimizes total service latency, plus that latency — the latency baseline
// for throughput-optimal scheduling.
func OptimumMinLatency(tr *Trace) ([]Fulfillment, int) { return offline.OptimumMinLatency(tr) }

// OptimumMinLatencyParallel is OptimumMinLatency on the segmented worker
// pool: same maximum cardinality and same (unique) minimum total latency,
// computed per independent segment (workers <= 0: GOMAXPROCS).
func OptimumMinLatencyParallel(tr *Trace, workers int) ([]Fulfillment, int) {
	return offline.OptimumMinLatencyParallel(tr, workers)
}

// MaxProfit returns the maximum total request weight an offline schedule can
// serve (the weighted extension's optimum; equals Optimum when unweighted).
func MaxProfit(tr *Trace) int { return offline.MaxProfit(tr) }

// MaxProfitParallel returns exactly MaxProfit(tr), computed over independent
// segments on a worker pool (workers <= 0: GOMAXPROCS).
func MaxProfitParallel(tr *Trace, workers int) int {
	return offline.MaxProfitParallel(tr, workers)
}

// MaxProfitStream sums the weighted offline optimum over a stream of
// independent sub-traces on a worker pool — the bounded-memory sibling of
// MaxProfitParallel. It returns the total profit and the number of segments
// consumed.
func MaxProfitStream(segments iter.Seq2[*Trace, error], workers int) (profit, nsegs int, err error) {
	return offline.MaxProfitStream(segments, workers)
}

// EarliestDeadlineSchedule serves tr greedily by earliest deadline on every
// resource and returns the number of requests fulfilled — optimal for
// single-choice traces (Observation 3.1).
func EarliestDeadlineSchedule(tr *Trace) int { return offline.EarliestDeadlineSchedule(tr) }

// AdaptiveSource generates arrivals round by round while observing which
// requests the online algorithm has served — the paper's adaptive adversary
// model (Theorem 2.6).
type AdaptiveSource = core.AdaptiveSource

// MeasureAdaptiveStream runs s against an adaptive source and computes its
// competitive ratio incrementally: generated rounds stream through a
// clean-cut segmenter into the segmented offline solver while the run is in
// progress, so the full trace is never materialized. Returns the measurement
// and the number of segments the run decomposed into.
func MeasureAdaptiveStream(s Strategy, src AdaptiveSource, workers int) (Measurement, int) {
	return ratio.RunAdaptiveStream(s, src, workers)
}

// Global strategies (Table 1 rows).

// NewAFix returns A_fix: schedule a maximum number of new arrivals each
// round, never reschedule. Competitive ratio exactly 2 - 1/d.
func NewAFix() Strategy { return strategies.NewFix() }

// NewACurrent returns A_current: maximum matching on the current round's
// slots only. Ratio between e/(e-1) and 2 - 1/d.
func NewACurrent() Strategy { return strategies.NewCurrent() }

// NewAFixBalance returns A_fix_balance: like A_fix but filling the earliest
// rounds first (maximizing the paper's balance function F).
func NewAFixBalance() Strategy { return strategies.NewFixBalance() }

// NewAEager returns A_eager: recompute a maximum matching every round,
// maximizing current-round service, keeping scheduled requests scheduled.
func NewAEager() Strategy { return strategies.NewEager() }

// NewABalance returns A_balance: like A_eager with the full balance
// objective F — the paper's best simple strategy.
func NewABalance() Strategy { return strategies.NewBalance() }

// NewEDF returns the independent-copies Earliest Deadline First reference
// strategy (1-competitive with one alternative, exactly 2-competitive with
// two; Observations 3.1 and 3.2).
func NewEDF() Strategy { return strategies.NewEDF() }

// NewEDFCoordinated returns the EDF ablation that cancels sibling copies.
func NewEDFCoordinated() Strategy { return strategies.NewEDFCoordinated() }

// NewFirstFit returns the first-fit baseline.
func NewFirstFit() Strategy { return strategies.NewFirstFit() }

// NewRandomFit returns the seeded random-slot baseline.
func NewRandomFit(seed int64) Strategy { return strategies.NewRandomFit(seed) }

// NewRanking returns the RANKING-style randomized strategy (random fixed
// slot ranks, greedy minimum-rank assignment) — the [KVV90]-inspired
// extension experiment.
func NewRanking(seed int64) Strategy { return strategies.NewRanking(seed) }

// NewFixWeighted returns the weighted A_fix variant (heaviest arrivals
// admitted first; never reschedules) for the weighted extension.
func NewFixWeighted() Strategy { return strategies.NewFixWeighted() }

// NewEagerWeighted returns the weighted rescheduler: every round it
// recomputes the maximum-total-weight matching over the window, displacing
// lighter requests for heavier ones.
func NewEagerWeighted() Strategy { return strategies.NewEagerWeighted() }

// Local (distributed) strategies.

// NewALocalFix returns A_local_fix: two communication rounds per scheduling
// round, exactly 2-competitive (Theorem 3.7).
func NewALocalFix() Strategy { return local.NewFix() }

// NewALocalEager returns A_local_eager: at most nine communication rounds
// per scheduling round, 5/3-competitive (Theorem 3.8).
func NewALocalEager() Strategy { return local.NewEager() }

// NewALocalEagerWide returns the 2d-2 mailbox variant of A_local_eager
// (eight communication rounds).
func NewALocalEagerWide() Strategy { return local.NewEagerWide() }

// Strategies returns a fresh instance of every listed strategy, keyed by
// name — the registry's default iteration set.
func Strategies() map[string]Strategy {
	return registry.ListedStrategies()
}

// GlobalStrategies returns the five Table 1 strategies in row order.
func GlobalStrategies() []Strategy { return strategies.Global() }

// StrategyByName returns a fresh strategy by registry spec — a name,
// optionally followed by ",key=value" parameters, e.g. "A_balance" or
// "compose,router=greedy,order=sjf" — or nil for unknown names or invalid
// parameters.
func StrategyByName(spec string) Strategy {
	s, err := registry.NewStrategySpec(spec)
	if err != nil {
		return nil
	}
	return s
}

// Adversarial constructions (Section 2 and Theorem 3.7).

// AdversaryFix builds the Theorem 2.1 input forcing 2 - 1/d on A_fix.
func AdversaryFix(d, phases int) Construction { return adversary.Fix(d, phases) }

// AdversaryCurrent builds the Theorem 2.2 input forcing e/(e-1) (as l grows)
// on A_current; d = lcm(1..l).
func AdversaryCurrent(l, phases int) Construction { return adversary.Current(l, phases) }

// AdversaryCurrentBound returns the analytic forced ratio of
// AdversaryCurrent for finite l.
func AdversaryCurrentBound(l int) float64 { return adversary.CurrentBound(l) }

// AdversaryFixBalance builds the Theorem 2.3 input forcing 3d/(2d+2) on
// A_fix_balance (even d).
func AdversaryFixBalance(d, phases int) Construction { return adversary.FixBalance(d, phases) }

// AdversaryEager builds the Theorem 2.4 input forcing 4/3 on A_eager (and,
// at d=2, on A_current, A_fix_balance and A_balance).
func AdversaryEager(d, phases int) Construction { return adversary.Eager(d, phases) }

// AdversaryBalance builds the Theorem 2.5 input forcing (5d+2)/(4d+1) on
// A_balance for d = 3x-1, with k independent resource groups.
func AdversaryBalance(x, k, intervals int) Construction { return adversary.Balance(x, k, intervals) }

// AdversaryUniversal builds the adaptive Theorem 2.6 input forcing at least
// 45/41 on every deterministic online algorithm (3 | d).
func AdversaryUniversal(d, cycles int) Construction { return adversary.Universal(d, cycles) }

// AdversaryLocalFix builds the Theorem 3.7 input forcing exactly 2 on
// A_local_fix.
func AdversaryLocalFix(d, intervals int) Construction { return adversary.LocalFix(d, intervals) }

// AdversaryEDF builds the input family on which independent-copies EDF is
// exactly 2-competitive (Observation 3.2).
func AdversaryEDF(d, intervals int) Construction { return adversary.EDFWorstCase(d, intervals) }

// Measurement harness.

// Measure runs s over tr and compares with the offline optimum.
func Measure(s Strategy, tr *Trace) Measurement { return ratio.Measure(s, tr) }

// MeasureChecked is Measure for untrusted traces: it returns an error naming
// the first offending request instead of panicking.
func MeasureChecked(s Strategy, tr *Trace) (Measurement, error) {
	return ratio.MeasureChecked(s, tr)
}

// MeasureConstruction runs s on an adversarial construction and attaches the
// construction's proven bound.
func MeasureConstruction(c Construction, s Strategy) Measurement {
	return ratio.MeasureConstruction(c, s)
}

// MeasureJob is one (construction, strategy) measurement for MeasureParallel.
type MeasureJob = ratio.Job

// MeasureParallel runs the jobs on a worker pool (GOMAXPROCS workers if
// workers <= 0) and returns measurements in job order. A panicking job does
// not take down its siblings: they complete, then MeasureParallel re-panics
// with a *MeasureJobPanic naming the offending job.
func MeasureParallel(jobs []MeasureJob, workers int) []Measurement {
	return ratio.RunParallel(jobs, workers)
}

// MeasureParallelChecked is MeasureParallel returning job panics as an error
// (one *MeasureJobPanic per failed job) instead of re-panicking.
func MeasureParallelChecked(jobs []MeasureJob, workers int) ([]Measurement, error) {
	return ratio.RunParallelChecked(jobs, workers)
}

// MeasureJobPanic attributes a panic in a MeasureParallel job to the job's
// name and index.
type MeasureJobPanic = ratio.JobPanic

// FormatRatio renders a measured competitive ratio with the given number of
// decimals, spelling starvation out as "inf" and NaN as "NaN" instead of a
// misleading numeric value — the one formatting rule shared by every CSV-
// and table-emitting tool.
func FormatRatio(r float64, decimals int) string { return ratio.FormatRatio(r, decimals) }

// RatioSummary aggregates a strategy's empirical ratio over many seeds.
type RatioSummary = ratio.Summary

// Summarize measures mk() against gen(seed) for seeds 0..seeds-1 and
// aggregates the ratios (mean, deviation, extremes).
func Summarize(mk func() Strategy, gen func(seed int64) *Trace, seeds int) *RatioSummary {
	return ratio.Summarize(func() core.Strategy { return mk() }, gen, seeds)
}

// SummarizeParallel is Summarize on a worker pool (workers <= 0: GOMAXPROCS).
// Results are folded strictly in seed order, so the summary is bit-identical
// to Summarize for every worker count. A panicking seed surfaces as a
// *MeasureJobPanic naming it.
func SummarizeParallel(mk func() Strategy, gen func(seed int64) *Trace, seeds, workers int) (*RatioSummary, error) {
	return ratio.SummarizeParallel(func() core.Strategy { return mk() }, gen, seeds, workers)
}

// AdversaryUniversalAnyD is the Theorem 2.6 remark variant for deadlines not
// divisible by three (>= 12/11 for every d >= 4).
func AdversaryUniversalAnyD(d, cycles int) Construction {
	return adversary.UniversalAnyD(d, cycles)
}

// RenderGrid draws the fulfillment log as a resources-by-rounds ASCII grid
// over rounds [from, to) (to < 0 means the whole horizon).
func RenderGrid(tr *Trace, log []Fulfillment, from, to int) string {
	return render.Grid(tr, log, from, to)
}

// RenderArrivals lists the injection schedule over rounds [from, to).
func RenderArrivals(tr *Trace, from, to int) string { return render.Arrivals(tr, from, to) }

// RenderLosses lists the requests the log failed to serve, by arrival round.
func RenderLosses(tr *Trace, log []Fulfillment) string { return render.LossSummary(tr, log) }

// RenderDiff lists the slots where two schedules of the same trace differ.
func RenderDiff(tr *Trace, a, b []Fulfillment) string { return render.Diff(tr, a, b) }

// Workload generators.

// Uniform generates uniformly random two-choice traffic.
func Uniform(cfg WorkloadConfig) *Trace { return workload.Uniform(cfg) }

// Zipf generates hot-spot traffic with Zipf-distributed first alternatives.
func Zipf(cfg WorkloadConfig, s float64) *Trace { return workload.Zipf(cfg, s) }

// Bursty generates on/off correlated traffic.
func Bursty(cfg WorkloadConfig, onLen, offLen int, burstRate float64) *Trace {
	return workload.Bursty(cfg, onLen, offLen, burstRate)
}

// VideoServer generates the paper's motivating video-on-demand workload: a
// replicated catalog with Zipf popularity.
func VideoServer(cfg WorkloadConfig, items int, s float64) *Trace {
	return workload.VideoServer(cfg, items, s)
}

// SingleChoice generates one-alternative traffic (Observation 3.1).
func SingleChoice(cfg WorkloadConfig) *Trace { return workload.SingleChoice(cfg) }

// CChoice generates c-alternative traffic (the EDF extension).
func CChoice(cfg WorkloadConfig, c int) *Trace { return workload.CChoice(cfg, c) }

// MixedDeadlines generates two-choice traffic with per-request deadline
// windows drawn from [1, D] (the heterogeneous-deadline extension).
func MixedDeadlines(cfg WorkloadConfig) *Trace { return workload.MixedDeadlines(cfg) }

// Weighted generates uniform two-choice traffic with 1/w-distributed weights
// in {1..maxW} (priority classes for the weighted extension).
func Weighted(cfg WorkloadConfig, maxW int) *Trace { return workload.Weighted(cfg, maxW) }

// TrapMix embeds Theorem 2.1-style traps into random background traffic
// every trapEvery rounds — the "realistic but occasionally adversarial"
// blend that separates the rescheduling strategies from the fix family.
func TrapMix(cfg WorkloadConfig, trapEvery int) *Trace { return workload.TrapMix(cfg, trapEvery) }

// ShuffleAlts returns a copy of tr with every request's alternative listing
// shuffled — the tie-breaking ablation for adversaries that steer through
// listing order.
func ShuffleAlts(tr *Trace, seed int64) *Trace { return workload.ShuffleAlts(tr, seed) }

// WithWeights returns a copy of tr whose requests draw harmonic 1/w weights
// from [1, maxW] — turns any trace shape into a weighted workload.
func WithWeights(tr *Trace, maxW int, seed int64) *Trace {
	return workload.WithWeights(tr, maxW, seed)
}

// ShuffleArrivalOrder returns a copy of tr with the per-round injection
// order shuffled — the ablation for adversaries that steer through ID order.
func ShuffleArrivalOrder(tr *Trace, seed int64) *Trace {
	return workload.ShuffleArrivalOrder(tr, seed)
}

// Trace serialization.

// WriteTrace serializes tr as JSON.
func WriteTrace(w io.Writer, tr *Trace) error { return trace.Write(w, tr) }

// ReadTrace deserializes and validates a trace.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// WriteTraceStream serializes tr as JSONL (header line plus one request per
// line, in arrival order) — the streaming format for traces too large to hold
// as one JSON document. Generators that never materialize a Trace use
// TraceStreamWriter directly.
func WriteTraceStream(w io.Writer, tr *Trace) error { return trace.WriteStream(w, tr) }

// ReadTraceStream materializes a whole JSONL stream as a validated trace.
func ReadTraceStream(r io.Reader) (*Trace, error) { return trace.ReadStream(r) }

// TraceStreamWriter emits a JSONL trace request by request; TraceStreamReader
// decodes one record by record.
type (
	TraceStreamWriter = trace.StreamWriter
	TraceStreamReader = trace.StreamReader
)

// NewTraceStreamWriter writes the JSONL header for a trace over n resources
// with default window d and returns the writer.
func NewTraceStreamWriter(w io.Writer, n, d int) (*TraceStreamWriter, error) {
	return trace.NewStreamWriter(w, n, d)
}

// NewTraceStreamReader reads and validates the JSONL header.
func NewTraceStreamReader(r io.Reader) (*TraceStreamReader, error) {
	return trace.NewStreamReader(r)
}

// TraceSegments iterates over the independent time segments of a JSONL trace
// stream without materializing more than one segment; segment optima sum to
// the whole trace's optimum (feed it to OptimumStream).
func TraceSegments(r io.Reader) iter.Seq2[*Trace, error] { return trace.Segments(r) }

// SummarizeTrace computes summary statistics for tr.
func SummarizeTrace(tr *Trace) TraceStats { return trace.Summarize(tr) }
