// Twochoices: the load-balancing principle the whole paper rests on
// (Section 1.1). First the classic balls-into-bins measurement — giving each
// ball two random bin choices collapses the maximum load from
// Θ(log n / log log n) to Θ(log log n) [ABKU94] — then the same effect in
// the deadline scheduler: the identical arrival pattern with one versus two
// alternative disks per request, served by A_balance.
package main

import (
	"fmt"
	"math"

	"reqsched"
	"reqsched/internal/ballsbins"
)

func main() {
	// Part 1: balls into bins, m = n.
	const n = 100000
	fmt.Printf("balls-into-bins, %d balls into %d bins (5-seed average):\n", n, n)
	for _, c := range []int{1, 2, 3} {
		sum := 0
		for seed := int64(1); seed <= 5; seed++ {
			sum += ballsbins.MaxLoad(ballsbins.Greedy(n, n, c, seed))
		}
		fmt.Printf("  c=%d choices: max load %.1f\n", c, float64(sum)/5)
	}
	fmt.Printf("  (theory: c=1 ~ ln n/ln ln n = %.1f; c=2 ~ ln ln n/ln 2 = %.1f)\n\n",
		math.Log(n)/math.Log(math.Log(n)), math.Log(math.Log(n))/math.Log(2))

	// Part 1b: the parallel collision protocol — the communication-round
	// model behind Section 3.2's local strategies.
	res := ballsbins.Collision(n, n, 2, 4, 40, 1)
	fmt.Printf("collision protocol (2 choices, threshold 4): all %d balls placed in %d rounds\n\n",
		n-res.Unplaced, res.Rounds)

	// Part 2: the same principle in the deadline scheduler. One arrival
	// pattern, rendered once with a single alternative per request and once
	// with two.
	cfg := reqsched.WorkloadConfig{N: 10, D: 4, Rounds: 200, Rate: 10, Seed: 7}
	one := reqsched.CChoice(cfg, 1)
	two := reqsched.CChoice(cfg, 2)

	for _, tc := range []struct {
		name string
		tr   *reqsched.Trace
	}{{"one alternative ", one}, {"two alternatives", two}} {
		res := reqsched.Run(reqsched.NewABalance(), tc.tr)
		opt := reqsched.Optimum(tc.tr)
		fmt.Printf("scheduler, %s: served %4d of %4d (offline optimum %4d, loss %.1f%%)\n",
			tc.name, res.Fulfilled, tc.tr.NumRequests(), opt,
			100*float64(tc.tr.NumRequests()-res.Fulfilled)/float64(tc.tr.NumRequests()))
	}
	fmt.Println("\nThe second choice absorbs the arrival randomness: most of the")
	fmt.Println("single-choice losses are hot-spot collisions a second disk removes —")
	fmt.Println("the reason the paper's model gives every request two alternatives.")
}
