// Quickstart: build a tiny request trace by hand, run the paper's best
// simple strategy (A_balance) on it, and compare with the offline optimum.
package main

import (
	"fmt"

	"reqsched"
)

func main() {
	// Four disks, every request must be served within 3 rounds of arrival.
	b := reqsched.NewBuilder(4, 3)

	// Round 0: six requests. Each names two alternative disks in
	// preference order.
	b.Add(0, 0, 1)
	b.Add(0, 0, 1)
	b.Add(0, 2, 3)
	b.Add(0, 2, 3)
	b.Add(0, 1, 2)
	b.Add(0, 1, 2)

	// Round 2: a burst hammering the pair (0, 1).
	for i := 0; i < 5; i++ {
		b.Add(2, 0, 1)
	}

	tr := b.Build()
	fmt.Println("trace:", reqsched.SummarizeTrace(tr))

	res := reqsched.Run(reqsched.NewABalance(), tr)
	opt := reqsched.Optimum(tr)

	fmt.Printf("A_balance served %d of %d requests (offline optimum %d)\n",
		res.Fulfilled, tr.NumRequests(), opt)
	fmt.Printf("mean service latency: %.2f rounds\n", res.MeanLatency())
	for _, f := range res.Log {
		fmt.Printf("  round %d: disk %d serves request %d (arrived %d)\n",
			f.Round, f.Res, f.Req.ID, f.Req.Arrive)
	}

	// Every schedule can be validated independently.
	if err := reqsched.ValidateLog(tr, res.Log); err != nil {
		panic(err)
	}
	fmt.Println("schedule validated: one request per disk per round, all within deadline")
}
