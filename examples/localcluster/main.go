// Localcluster: the distributed setting of Section 3.2. Clients cannot see
// the global request picture; they negotiate with disks through fixed-size
// messages, at most d per disk per communication round (latest deadline
// first). The example contrasts the two local protocols:
//
//   - A_local_fix: 2 communication rounds per scheduling round, ratio 2;
//   - A_local_eager: up to 9 communication rounds, ratio 5/3 — it pulls
//     scheduled requests forward into idle slots and brokers exchanges for
//     rejected ones;
//
// and shows their communication bills next to the global (centralized)
// A_balance, which needs full information every round.
package main

import (
	"fmt"

	"reqsched"
	"reqsched/internal/local"
	"reqsched/internal/render"
)

func main() {
	cfg := reqsched.WorkloadConfig{N: 10, D: 5, Rounds: 200, Rate: 11, Seed: 7}
	tr := reqsched.Bursty(cfg, 4, 8, 30) // correlated bursts: the hard case
	fmt.Println("bursty cluster workload:", reqsched.SummarizeTrace(tr))
	opt := reqsched.Optimum(tr)
	fmt.Printf("offline optimum: %d of %d\n\n", opt, tr.NumRequests())

	fmt.Printf("%-20s %8s %9s %11s %10s %14s\n",
		"strategy", "served", "OPT/ALG", "commRounds", "messages", "msgs/request")
	for _, s := range []reqsched.Strategy{
		reqsched.NewALocalFix(),
		reqsched.NewALocalEager(),
		reqsched.NewALocalEagerWide(),
		reqsched.NewABalance(), // centralized reference
	} {
		res := reqsched.Run(s, tr)
		perReq := 0.0
		if tr.NumRequests() > 0 {
			perReq = float64(res.Messages) / float64(tr.NumRequests())
		}
		fmt.Printf("%-20s %8d %9.4f %11d %10d %14.2f\n",
			res.Strategy, res.Fulfilled, float64(opt)/float64(res.Fulfilled),
			res.CommRounds, res.Messages, perReq)
	}

	fmt.Println("\nThe centralized strategy shows zero communication because the model")
	fmt.Println("grants it the whole request picture for free; the local protocols pay")
	fmt.Println("per message and still stay within their proven ratios (2 and 5/3).")

	// Protocol transcript of the first scheduling rounds: watch the mailbox
	// contention during a burst.
	withTranscript := local.NewFix()
	withTranscript.EnableTranscript()
	reqsched.Run(withTranscript, tr)
	fmt.Println("\nA_local_fix communication transcript (first 10 communication rounds):")
	rounds := withTranscript.Transcript()
	if len(rounds) > 10 {
		rounds = rounds[:10]
	}
	fmt.Print(render.CommRounds(rounds, 24))
}
