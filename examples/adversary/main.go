// Adversary: watch a lower-bound construction at work. The Theorem 2.1
// adversary repeatedly baits A_fix into placing bridge requests on the
// resources it is about to flood; because A_fix never reschedules, the flood
// then finds its resources occupied. A_eager, allowed to reschedule, serves
// everything.
package main

import (
	"fmt"

	"reqsched"
)

func main() {
	const d, phases = 4, 10
	c := reqsched.AdversaryFix(d, phases)
	fmt.Printf("construction %s: n=%d d=%d, proven forced ratio %.4f\n",
		c.Name, c.N, c.D, c.Bound)
	fmt.Println("trace:", reqsched.SummarizeTrace(c.Trace))
	fmt.Println()

	for _, s := range []reqsched.Strategy{
		reqsched.NewAFix(),
		reqsched.NewAFixBalance(),
		reqsched.NewAEager(),
		reqsched.NewABalance(),
	} {
		m := reqsched.MeasureConstruction(c, s)
		fmt.Printf("%-15s OPT=%4d ALG=%4d ratio=%.4f\n", m.Strategy, m.OPT, m.ALG, m.Ratio())
	}

	fmt.Println("\nPer-phase anatomy (d=4): the adversary injects 2d-2=6 bridge requests")
	fmt.Println("listing the soon-to-be-flooded pair first, then a block of 2d=8; A_fix")
	fmt.Println("pins the bridges onto the flooded pair and serves only 8 of 14, while")
	fmt.Println("rescheduling strategies move the bridges aside and serve all 14.")

	// The same idea as an API user would write it: craft one phase by hand.
	b := reqsched.NewBuilder(4, d)
	b.Block(0, 1, 2) // flood resources 1,2 for d rounds
	for i := 0; i < d-1; i++ {
		b.Add(d-1, 1, 0) // bridge: prefers the flooded resource 1
		b.Add(d-1, 2, 3)
	}
	b.Block(d, 1, 2) // second flood
	tr := b.Build()
	fix := reqsched.Run(reqsched.NewAFix(), tr)
	eager := reqsched.Run(reqsched.NewAEager(), tr)
	fmt.Printf("\nhand-built phase: OPT=%d  A_fix=%d  A_eager=%d\n",
		reqsched.Optimum(tr), fix.Fulfilled, eager.Fulfilled)

	fmt.Println("\narrivals:")
	fmt.Print(reqsched.RenderArrivals(tr, 0, -1))
	fmt.Println("\nA_fix schedule (note resources 0 and 3 idle after round", d, "):")
	fmt.Print(reqsched.RenderGrid(tr, fix.Log, 0, -1))
	fmt.Println("\nA_fix losses:")
	fmt.Print(reqsched.RenderLosses(tr, fix.Log))
	fmt.Println("\nA_eager schedule (bridges rescheduled onto 0 and 3):")
	fmt.Print(reqsched.RenderGrid(tr, eager.Log, 0, -1))
}
