// Priorities: the weighted extension. Requests carry weights (say, paying
// tiers of a video service) and the objective becomes maximizing the total
// weight served before deadlines. The example compares:
//
//   - the unweighted strategies (weight-blind: they maximize request count);
//   - A_fix_w (admits heaviest arrivals first, never reschedules);
//   - A_eager_w (recomputes the maximum-weight matching every round,
//     displacing light requests when heavy ones arrive);
//
// against the offline maximum profit.
package main

import (
	"fmt"

	"reqsched"
)

func main() {
	cfg := reqsched.WorkloadConfig{N: 8, D: 4, Rounds: 200, Rate: 12, Seed: 5}
	const maxW = 10
	tr := reqsched.Weighted(cfg, maxW)

	totalWeight := 0
	for _, r := range tr.Requests() {
		totalWeight += r.Weight()
	}
	maxProfit := reqsched.MaxProfit(tr)
	fmt.Println("weighted workload:", reqsched.SummarizeTrace(tr))
	fmt.Printf("total offered weight %d; offline max profit %d; plain optimum (count) %d\n\n",
		totalWeight, maxProfit, reqsched.Optimum(tr))

	fmt.Printf("%-15s %8s %10s %12s\n", "strategy", "served", "weight", "profit ratio")
	for _, s := range []reqsched.Strategy{
		reqsched.NewABalance(), // weight-blind rescheduler
		reqsched.NewAFix(),     // weight-blind, no rescheduling
		reqsched.NewFixWeighted(),
		reqsched.NewEagerWeighted(),
	} {
		res := reqsched.Run(s, tr)
		fmt.Printf("%-15s %8d %10d %12.4f\n",
			res.Strategy, res.Fulfilled, res.WeightFulfilled,
			float64(maxProfit)/float64(res.WeightFulfilled))
	}

	fmt.Println("\nThe weight-blind strategies serve more requests but less value under")
	fmt.Println("overload; the weighted rescheduler trades light requests for heavy ones")
	fmt.Println("and tracks the offline profit closely.")
}
