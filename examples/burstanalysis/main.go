// Burstanalysis: dissect how the strategies absorb a correlated burst — the
// scenario the paper's adversarial model is built for. The example runs a
// single large burst against A_fix and A_balance, plots the per-round
// backlog as ASCII, and classifies the losses with the augmenting-path
// analysis from the upper-bound proofs (Section 3): each lost request is the
// start of an augmenting path against the optimum, and its order (number of
// requests on the path) tells how many rescheduling steps an optimal
// schedule would have needed to save it.
package main

import (
	"fmt"
	"sort"
	"strings"

	"reqsched"
)

func main() {
	const (
		n = 8
		d = 4
	)
	b := reqsched.NewBuilder(n, d)
	// Background load: one request per rotating resource pair per round,
	// kept away from resources 0..3 where the burst will hit.
	for t := 0; t < 40; t++ {
		b.Add(t, 4+t%(n-4), 4+(t+1)%(n-4))
	}
	// Round 10: "bridge" requests that list the soon-to-be-hot pair (1,2)
	// first but could also go to the idle resources 0 and 3.
	for i := 0; i < d-1; i++ {
		b.Add(10, 1, 0)
		b.Add(10, 2, 3)
	}
	// Round 11: the burst — a block of 2d requests that can only use (1,2).
	for i := 0; i < d; i++ {
		b.Add(11, 1, 2)
		b.Add(11, 2, 1)
	}
	tr := b.Build()
	fmt.Println("burst workload:", reqsched.SummarizeTrace(tr))
	opt := reqsched.Optimum(tr)
	fmt.Printf("offline optimum: %d of %d\n\n", opt, tr.NumRequests())

	for _, s := range []reqsched.Strategy{reqsched.NewAFix(), reqsched.NewABalance()} {
		res, series := reqsched.RunWithSeries(s, tr)
		fmt.Printf("--- %s: served %d (OPT %d) ---\n", res.Strategy, res.Fulfilled, opt)
		fmt.Println("backlog per round (unscheduled pending requests):")
		for _, r := range series.Rounds {
			if r.T < 8 || r.T > 20 {
				continue
			}
			fmt.Printf("  t=%2d |%s %d\n", r.T, strings.Repeat("#", r.Backlog), r.Backlog)
		}
		orders := reqsched.AugmentingOrders(tr, res.Log)
		if len(orders) == 0 {
			fmt.Println("no losses: schedule is optimal")
		} else {
			var ks []int
			for k := range orders {
				ks = append(ks, k)
			}
			sort.Ints(ks)
			fmt.Println("losses by augmenting-path order (requests per path):")
			for _, k := range ks {
				fmt.Printf("  order %d: %d paths\n", k, orders[k])
			}
		}
		fmt.Println()
	}

	fmt.Println("A_fix's losses sit on short augmenting paths — one or two reassignments")
	fmt.Println("would have saved them, but A_fix never reschedules. A_balance's")
	fmt.Println("remaining losses (if any) need longer chains, matching its stronger")
	fmt.Println("guarantee (no augmenting paths of order < 3).")
}
