// Videoserver: the paper's motivating application. A distributed video
// server stores a catalog of titles, each replicated on two disks (random
// duplicated assignment); client requests follow a Zipf popularity curve, so
// hot titles hammer the same disk pair. Every request must be served within
// d rounds or the stream misses its deadline.
//
// The example compares all strategies on the same workload and shows how the
// two-choice scheduling strategies exploit the replicas, where EDF's
// independent copies waste capacity.
package main

import (
	"fmt"
	"sort"

	"reqsched"
)

func main() {
	cfg := reqsched.WorkloadConfig{
		N:      12,  // disks
		D:      6,   // rounds before a frame deadline is missed
		Rounds: 300, // busy period length
		Rate:   13,  // slightly over nominal capacity
		Seed:   42,
	}
	const (
		catalog = 200 // titles
		zipfS   = 1.3 // popularity skew
	)
	tr := reqsched.VideoServer(cfg, catalog, zipfS)
	fmt.Println("video-on-demand workload:", reqsched.SummarizeTrace(tr))

	opt := reqsched.Optimum(tr)
	_, optLatency := reqsched.OptimumMinLatency(tr)
	fmt.Printf("offline optimum serves %d of %d requests (best possible mean latency %.2f)\n\n",
		opt, tr.NumRequests(), float64(optLatency)/float64(opt))

	type row struct {
		name            string
		served, expired int
		ratio, latency  float64
	}
	var rows []row
	for name, s := range reqsched.Strategies() {
		res := reqsched.Run(s, tr)
		rows = append(rows, row{
			name:    name,
			served:  res.Fulfilled,
			expired: res.Expired,
			ratio:   float64(opt) / float64(res.Fulfilled),
			latency: res.MeanLatency(),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].served > rows[j].served })

	fmt.Printf("%-20s %8s %8s %8s %9s\n", "strategy", "served", "missed", "OPT/ALG", "latency")
	for _, r := range rows {
		fmt.Printf("%-20s %8d %8d %8.4f %9.2f\n", r.name, r.served, r.expired, r.ratio, r.latency)
	}

	fmt.Println("\nNote how the rescheduling strategies (A_balance, A_eager) stay closest")
	fmt.Println("to the optimum, the fix-family loses to its irrevocable placements, and")
	fmt.Println("independent-copies EDF wastes disk rounds on already-served requests.")
}
